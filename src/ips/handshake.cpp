// Handshake case study: a req/ack protocol target (ROADMAP's
// stateful-testbench coverage item).
//
// The IP is a four-phase-handshake accumulator: a requester raises `req`
// with `data_in` held stable; the target latches the operand, runs a
// two-cycle multiply-accumulate (the deep combinational cone the STA bins
// critical), then raises `ack` and presents `data_out`; `ack` drops only
// after `req` drops. Outputs also expose a running checksum so every
// transaction perturbs observable state (delay mutants are killable).
//
// Unlike the paper's three IPs, the shipped testbench is NOT a pure
// function of the cycle index: it is a protocol FSM with an incremental
// PRNG (random idle gaps, hold lengths and operands), provided only through
// Testbench::makeDriver. Every campaign run — golden and each mutant —
// replays the identical stimulus from a fresh seeded session, which is
// exactly the contract the per-task driver machinery must uphold.
#include "ips/case_study.h"

#include <memory>

#include "ir/builder.h"
#include "util/prng.h"

namespace xlv::ips {

using namespace xlv::ir;

namespace {

constexpr int kW = 16;  // operand width
constexpr int kAccW = 24;

std::shared_ptr<Module> buildHandshakeModule() {
  ModuleBuilder mb("handshake");
  auto clk = mb.clock("clk");
  auto rst = mb.in("rst", 1);
  auto req = mb.in("req", 1);
  auto dataIn = mb.in("data_in", kW);
  auto ack = mb.out("ack", 1);
  auto dataOut = mb.out("data_out", kAccW);
  auto chkOut = mb.out("checksum", kW);

  // Protocol state: 0 = IDLE (wait req), 1 = BUSY (MAC settling),
  // 2 = HOLD (ack high, wait for req release).
  auto state = mb.signal("state", 2);
  auto latch = mb.signal("op_latch", kW);
  auto busyCnt = mb.signal("busy_cnt", 2);
  auto acc = mb.signal("acc_r", kAccW);
  auto chk = mb.signal("chk_r", kW);
  auto ackR = mb.signal("ack_r", 1);

  // The critical cone: operand times a running coefficient folded into the
  // accumulator — multiplier depth plus the add makes these endpoints the
  // deepest paths of the design.
  auto macNext = mb.signal("mac_next", kAccW);
  mb.comb("p_mac", [&](ProcBuilder& p) {
    p.assign(macNext,
             Ex(acc) + slice(zext(Ex(latch), 2 * kW) * zext(slice(Ex(chk), 7, 0), 2 * kW),
                             kAccW - 1, 0));
  });
  auto chkNext = mb.signal("chk_next", kW);
  mb.comb("p_chk", [&](ProcBuilder& p) {
    p.assign(chkNext, (Ex(chk) ^ Ex(latch)) + slice(Ex(macNext), kW - 1, 0));
  });

  mb.onRising("protocol_p", clk, [&](ProcBuilder& p) {
    p.if_(
        Ex(rst) == 1u,
        [&] {
          p.assign(state, lit(2, 0));
          p.assign(latch, lit(kW, 0));
          p.assign(busyCnt, lit(2, 0));
          p.assign(acc, lit(kAccW, 0));
          p.assign(chk, lit(kW, 0x5a5a & ((1 << kW) - 1)));
          p.assign(ackR, lit(1, 0));
        },
        [&] {
          p.if_(
              Ex(state) == lit(2, 0),
              [&] {
                // IDLE: capture the operand on req.
                p.if_(Ex(req) == 1u, [&] {
                  p.assign(latch, dataIn);
                  p.assign(busyCnt, lit(2, 0));
                  p.assign(state, lit(2, 1));
                });
              },
              [&] {
                p.if_(
                    Ex(state) == lit(2, 1),
                    [&] {
                      // BUSY: let the MAC cone settle for two cycles, then
                      // commit and acknowledge.
                      p.if_(
                          Ex(busyCnt) == lit(2, 1),
                          [&] {
                            p.assign(acc, macNext);
                            p.assign(chk, chkNext);
                            p.assign(ackR, lit(1, 1));
                            p.assign(state, lit(2, 2));
                          },
                          [&] { p.assign(busyCnt, Ex(busyCnt) + 1u); });
                    },
                    [&] {
                      // HOLD: four-phase release — drop ack after req drops.
                      p.if_(Ex(req) == 0u, [&] {
                        p.assign(ackR, lit(1, 0));
                        p.assign(state, lit(2, 0));
                      });
                    });
              });
        });
  });

  mb.comb("p_ack_out", [&](ProcBuilder& p) { p.assign(ack, ackR); });
  mb.comb("p_data_out", [&](ProcBuilder& p) { p.assign(dataOut, acc); });
  mb.comb("p_chk_out", [&](ProcBuilder& p) { p.assign(chkOut, chk); });

  return mb.finish();
}

/// The per-session protocol driver: an FSM over (gap, assert, release)
/// phases with PRNG-derived gap lengths, hold lengths and operands. All
/// state lives in the session (captured by the returned closure), so two
/// sessions with the same seed replay identical stimuli and sessions with
/// different seeds explore different traffic shapes.
analysis::DriveFn makeHandshakeDriver(std::uint64_t seed) {
  struct Session {
    util::Prng prng;
    enum { Gap, Assert, Release } phase = Gap;
    std::uint64_t phaseLeft = 2;
    std::uint64_t operand = 0;
    explicit Session(std::uint64_t s) : prng(s) {}
  };
  auto st = std::make_shared<Session>(seed);
  return [st](std::uint64_t cycle, const analysis::PortSetter& set) {
    if (cycle < 2) {  // reset preamble: a fixed, state-free prologue
      set("rst", 1);
      set("req", 0);
      set("data_in", 0);
      return;
    }
    set("rst", 0);
    if (st->phaseLeft == 0) {
      switch (st->phase) {
        case Session::Gap:
          st->phase = Session::Assert;
          st->operand = st->prng.next() & 0xffff;
          // Hold req at least 5 cycles: capture + 2-cycle MAC + ack + margin,
          // so the write-only driver never races the target's ack.
          st->phaseLeft = 5 + st->prng.next() % 3;
          break;
        case Session::Assert:
          st->phase = Session::Release;
          st->phaseLeft = 2;  // req low long enough for ack to drop
          break;
        case Session::Release:
          st->phase = Session::Gap;
          st->phaseLeft = 1 + st->prng.next() % 4;
          break;
      }
    }
    --st->phaseLeft;
    set("req", st->phase == Session::Assert ? 1 : 0);
    set("data_in", st->phase == Session::Assert ? st->operand : 0);
  };
}

}  // namespace

CaseStudy buildHandshakeCase() {
  CaseStudy cs;
  cs.name = "Handshake";
  cs.module = buildHandshakeModule();
  cs.clockGHz = 1.0;
  cs.periodPs = 1000;
  cs.vdd = 1.05;
  cs.hfRatio = 8;
  cs.staThresholdFraction = 0.25;
  cs.staSpreadFraction = 0.75;  // MAC/checksum endpoints critical, FSM bits not
  cs.testbench.name = "reqack_random";
  cs.testbench.cycles = 400;
  // makeDriver-only: there is deliberately no shared `drive` — every engine
  // must go through a per-session driver (Testbench::driverForTask).
  cs.testbench.makeDriver = makeHandshakeDriver;
  return cs;
}

}  // namespace xlv::ips
