// Minimal MIPS I assembler: instruction encoders for the subset implemented
// by the Plasma-substitute core (ips/plasma.h). Encodings follow the MIPS I
// reference; offsets for branches are in instructions (relative to the
// instruction after the branch), targets for jumps are word addresses.
#pragma once

#include <cstdint>
#include <vector>

namespace xlv::ips::mips {

using u32 = std::uint32_t;

constexpr u32 rtype(u32 rs, u32 rt, u32 rd, u32 shamt, u32 funct) {
  return (0u << 26) | (rs << 21) | (rt << 16) | (rd << 11) | (shamt << 6) | funct;
}
constexpr u32 itype(u32 op, u32 rs, u32 rt, u32 imm16) {
  return (op << 26) | (rs << 21) | (rt << 16) | (imm16 & 0xFFFFu);
}

// R-type ALU
constexpr u32 ADD(u32 rd, u32 rs, u32 rt) { return rtype(rs, rt, rd, 0, 0x20); }
constexpr u32 ADDU(u32 rd, u32 rs, u32 rt) { return rtype(rs, rt, rd, 0, 0x21); }
constexpr u32 SUB(u32 rd, u32 rs, u32 rt) { return rtype(rs, rt, rd, 0, 0x22); }
constexpr u32 SUBU(u32 rd, u32 rs, u32 rt) { return rtype(rs, rt, rd, 0, 0x23); }
constexpr u32 AND(u32 rd, u32 rs, u32 rt) { return rtype(rs, rt, rd, 0, 0x24); }
constexpr u32 OR(u32 rd, u32 rs, u32 rt) { return rtype(rs, rt, rd, 0, 0x25); }
constexpr u32 XOR(u32 rd, u32 rs, u32 rt) { return rtype(rs, rt, rd, 0, 0x26); }
constexpr u32 NOR(u32 rd, u32 rs, u32 rt) { return rtype(rs, rt, rd, 0, 0x27); }
constexpr u32 SLT(u32 rd, u32 rs, u32 rt) { return rtype(rs, rt, rd, 0, 0x2A); }
constexpr u32 SLTU(u32 rd, u32 rs, u32 rt) { return rtype(rs, rt, rd, 0, 0x2B); }
constexpr u32 SLL(u32 rd, u32 rt, u32 sh) { return rtype(0, rt, rd, sh, 0x00); }
constexpr u32 SRL(u32 rd, u32 rt, u32 sh) { return rtype(0, rt, rd, sh, 0x02); }
constexpr u32 SRA(u32 rd, u32 rt, u32 sh) { return rtype(0, rt, rd, sh, 0x03); }
constexpr u32 SLLV(u32 rd, u32 rt, u32 rs) { return rtype(rs, rt, rd, 0, 0x04); }
constexpr u32 SRLV(u32 rd, u32 rt, u32 rs) { return rtype(rs, rt, rd, 0, 0x06); }
constexpr u32 SRAV(u32 rd, u32 rt, u32 rs) { return rtype(rs, rt, rd, 0, 0x07); }
constexpr u32 JR(u32 rs) { return rtype(rs, 0, 0, 0, 0x08); }
constexpr u32 MULT(u32 rs, u32 rt) { return rtype(rs, rt, 0, 0, 0x18); }
constexpr u32 MFHI(u32 rd) { return rtype(0, 0, rd, 0, 0x10); }
constexpr u32 MFLO(u32 rd) { return rtype(0, 0, rd, 0, 0x12); }

// I-type
constexpr u32 ADDI(u32 rt, u32 rs, u32 imm) { return itype(0x08, rs, rt, imm); }
constexpr u32 ADDIU(u32 rt, u32 rs, u32 imm) { return itype(0x09, rs, rt, imm); }
constexpr u32 SLTI(u32 rt, u32 rs, u32 imm) { return itype(0x0A, rs, rt, imm); }
constexpr u32 SLTIU(u32 rt, u32 rs, u32 imm) { return itype(0x0B, rs, rt, imm); }
constexpr u32 ANDI(u32 rt, u32 rs, u32 imm) { return itype(0x0C, rs, rt, imm); }
constexpr u32 ORI(u32 rt, u32 rs, u32 imm) { return itype(0x0D, rs, rt, imm); }
constexpr u32 XORI(u32 rt, u32 rs, u32 imm) { return itype(0x0E, rs, rt, imm); }
constexpr u32 LUI(u32 rt, u32 imm) { return itype(0x0F, 0, rt, imm); }
constexpr u32 LW(u32 rt, u32 off, u32 rs) { return itype(0x23, rs, rt, off); }
constexpr u32 SW(u32 rt, u32 off, u32 rs) { return itype(0x2B, rs, rt, off); }
constexpr u32 BEQ(u32 rs, u32 rt, u32 off) { return itype(0x04, rs, rt, off); }
constexpr u32 BNE(u32 rs, u32 rt, u32 off) { return itype(0x05, rs, rt, off); }

// J-type (target = word address)
constexpr u32 J(u32 target) { return (0x02u << 26) | (target & 0x03FFFFFFu); }
constexpr u32 JAL(u32 target) { return (0x03u << 26) | (target & 0x03FFFFFFu); }

constexpr u32 NOP() { return 0; }

/// Branch offset helper: from the instruction at `fromWord` (the branch) to
/// `toWord`, as the 16-bit offset field (relative to branch + 1).
constexpr u32 broff(int fromWord, int toWord) {
  return static_cast<u32>(toWord - (fromWord + 1)) & 0xFFFFu;
}

}  // namespace xlv::ips::mips
