// DSP case study: digital subsystem of a heart-rate detector (paper Section
// 8.1, [29] — laser-Doppler blood-flow imaging).
//
// Signal chain (Pan-Tompkins-style beat detection, one sample per clock):
//   1. 8-tap moving-average low-pass over the raw sample stream;
//   2. band-pass by subtracting the low-pass from the mid-tap (baseline
//      removal);
//   3. 5-point derivative emphasizing the pulse upstroke;
//   4. squaring (energy);
//   5. leaky moving-window integrator (y += (x - y) >> 3);
//   6. adaptive-threshold peak detection with separate signal/noise peak
//      estimators (SPKI/NPKI) and the classic THR = NPKI + (SPKI-NPKI)/4;
//   7. beat pulse + inter-beat interval output.
//
// Divergence from the literal Pan-Tompkins MWI noted in DESIGN.md: a leaky
// integrator replaces the 32-sample window so the state is a single
// register, keeping the flip-flop budget near the paper's 536.
//
// Structure matches Table 1's DSP row: two synchronous processes (datapath
// pipeline and detector) plus a set of small combinational processes.
#include "ips/case_study.h"

#include <cmath>

#include "ir/builder.h"
#include "util/prng.h"

namespace xlv::ips {

using namespace xlv::ir;

namespace {

std::shared_ptr<Module> buildDspModule() {
  ModuleBuilder mb("hr_dsp");
  auto clk = mb.clock("clk");
  auto rst = mb.in("rst", 1);
  auto sample = mb.in("sample", 16, /*isSigned=*/true);
  auto beat = mb.out("beat", 1);
  auto rrOut = mb.out("rr_interval", 16);
  auto energyOut = mb.out("energy", 32);

  // --- stage registers ---------------------------------------------------------
  // Low-pass delay line (8 taps, scalar registers => razor-eligible).
  Sig x[8];
  for (int i = 0; i < 8; ++i) x[i] = mb.signal("x" + std::to_string(i), 16, true);
  auto bpOut = mb.signal("bp_out", 16, true);
  // Derivative delay line.
  Sig d[4];
  for (int i = 0; i < 4; ++i) d[i] = mb.signal("d" + std::to_string(i), 16, true);
  auto derivR = mb.signal("deriv_r", 16, true);
  auto sq = mb.signal("sq", 32);
  auto integ = mb.signal("integ", 32);

  // Detector state.
  auto prevInteg = mb.signal("prev_integ", 32);
  auto rising = mb.signal("rising", 1);
  auto spki = mb.signal("spki", 32);
  auto npki = mb.signal("npki", 32);
  auto thr = mb.signal("thr_r", 32);
  auto peak = mb.signal("peak", 32);
  auto beatR = mb.signal("beat_r", 1);
  auto rrCount = mb.signal("rr_count", 16);
  auto rrLast = mb.signal("rr_last", 16);
  auto refractory = mb.signal("refractory", 8);
  auto sampleCnt = mb.signal("sample_cnt", 32);

  // --- combinational stages ------------------------------------------------------
  auto lpSum = mb.signal("lp_sum", 19, true);
  mb.comb("p_lp_sum", [&](ProcBuilder& p) {
    // Balanced adder tree (what synthesis would build for an 8-input sum).
    Ex s01 = sext(Ex(x[0]), 19) + sext(Ex(x[1]), 19);
    Ex s23 = sext(Ex(x[2]), 19) + sext(Ex(x[3]), 19);
    Ex s45 = sext(Ex(x[4]), 19) + sext(Ex(x[5]), 19);
    Ex s67 = sext(Ex(x[6]), 19) + sext(Ex(x[7]), 19);
    p.assign(lpSum, (s01 + s23) + (s45 + s67));
  });
  auto lpOut = mb.signal("lp_out", 16, true);
  mb.comb("p_lp_out", [&](ProcBuilder& p) {
    p.assign(lpOut, slice(ashr(Ex(lpSum), 3), 15, 0));
  });
  // Band-pass: mid-tap minus moving average.
  auto bpC = mb.signal("bp_c", 16, true);
  mb.comb("p_bp", [&](ProcBuilder& p) { p.assign(bpC, Ex(x[4]) - Ex(lpOut)); });

  // Derivative: (2*b[n] + b[n-1] - b[n-3] - 2*b[n-4]) / 8.
  auto derivC = mb.signal("deriv_c", 16, true);
  mb.comb("p_deriv", [&](ProcBuilder& p) {
    Ex acc = shl(sext(Ex(bpOut), 19), 1) + sext(Ex(d[0]), 19) - sext(Ex(d[2]), 19) -
             shl(sext(Ex(d[3]), 19), 1);
    p.assign(derivC, slice(ashr(acc, 3), 15, 0));
  });

  // Square (unsigned energy of the signed derivative).
  auto sqC = mb.signal("sq_c", 32);
  mb.comb("p_square", [&](ProcBuilder& p) {
    const Ex v = sext(Ex(derivR), 32);
    p.assign(sqC, v * v);
  });

  // Leaky integrator increment.
  auto integNext = mb.signal("integ_next", 32);
  mb.comb("p_integrate", [&](ProcBuilder& p) {
    // (sq - integ) is a two's-complement difference: shift arithmetically.
    p.assign(integNext, Ex(integ) + ashr(Ex(sq) - Ex(integ), 3));
  });

  // Peak condition: local maximum above threshold, outside refractory.
  auto isPeak = mb.signal("is_peak", 1);
  mb.comb("p_peak_detect", [&](ProcBuilder& p) {
    const Ex falling = Ex(integ) < Ex(prevInteg);
    const Ex aboveThr = Ex(prevInteg) > Ex(thr);
    const Ex free = Ex(refractory) == 0u;
    p.assign(isPeak, Ex(rising) & falling & aboveThr & free);
  });

  // Threshold update values (Pan-Tompkins running estimates).
  auto spkiNext = mb.signal("spki_next", 32);
  auto npkiNext = mb.signal("npki_next", 32);
  auto thrNext = mb.signal("thr_next", 32);
  mb.comb("p_spki", [&](ProcBuilder& p) {
    p.assign(spkiNext, shr(Ex(prevInteg), 3) + (Ex(spki) - shr(Ex(spki), 3)));
  });
  mb.comb("p_npki", [&](ProcBuilder& p) {
    p.assign(npkiNext, shr(Ex(prevInteg), 3) + (Ex(npki) - shr(Ex(npki), 3)));
  });
  mb.comb("p_thr", [&](ProcBuilder& p) {
    // spki - npki is a two's-complement difference: shift arithmetically.
    p.assign(thrNext, Ex(npki) + ashr(Ex(spki) - Ex(npki), 2));
  });

  mb.comb("p_beat_out", [&](ProcBuilder& p) { p.assign(beat, beatR); });
  mb.comb("p_rr_out", [&](ProcBuilder& p) { p.assign(rrOut, rrLast); });
  mb.comb("p_energy_out", [&](ProcBuilder& p) { p.assign(energyOut, integ); });

  // --- synchronous process 1: datapath pipeline -----------------------------------
  mb.onRising("pipeline_p", clk, [&](ProcBuilder& p) {
    p.if_(Ex(rst) == 1u,
          [&] {
            for (int i = 0; i < 8; ++i) p.assign(x[i], lit(16, 0));
            for (int i = 0; i < 4; ++i) p.assign(d[i], lit(16, 0));
            p.assign(bpOut, lit(16, 0));
            p.assign(derivR, lit(16, 0));
            p.assign(sq, lit(32, 0));
            p.assign(integ, lit(32, 0));
            p.assign(sampleCnt, lit(32, 0));
          },
          [&] {
            p.assign(x[0], sample);
            for (int i = 1; i < 8; ++i) p.assign(x[i], x[i - 1]);
            p.assign(bpOut, bpC);
            p.assign(d[0], bpOut);
            for (int i = 1; i < 4; ++i) p.assign(d[i], d[i - 1]);
            p.assign(derivR, derivC);
            p.assign(sq, sqC);
            p.assign(integ, integNext);
            p.assign(sampleCnt, Ex(sampleCnt) + 1u);
          });
  });

  // --- synchronous process 2: adaptive-threshold detector --------------------------
  mb.onRising("detector_p", clk, [&](ProcBuilder& p) {
    p.if_(Ex(rst) == 1u,
          [&] {
            p.assign(prevInteg, lit(32, 0));
            p.assign(rising, lit(1, 0));
            p.assign(spki, lit(32, 2048));
            p.assign(npki, lit(32, 256));
            p.assign(thr, lit(32, 512));
            p.assign(peak, lit(32, 0));
            p.assign(beatR, lit(1, 0));
            p.assign(rrCount, lit(16, 0));
            p.assign(rrLast, lit(16, 0));
            p.assign(refractory, lit(8, 0));
          },
          [&] {
            p.assign(prevInteg, integ);
            p.assign(rising, sel(Ex(integ) > Ex(prevInteg), lit(1, 1),
                                 sel(Ex(integ) < Ex(prevInteg), lit(1, 0), Ex(rising))));
            p.assign(rrCount, Ex(rrCount) + 1u);
            p.if_(Ex(refractory) != 0u,
                  [&] { p.assign(refractory, Ex(refractory) - 1u); });
            p.if_(Ex(isPeak) == 1u,
                  [&] {
                    p.assign(beatR, lit(1, 1));
                    p.assign(peak, prevInteg);
                    p.assign(spki, spkiNext);
                    p.assign(thr, thrNext);
                    p.assign(rrLast, rrCount);
                    p.assign(rrCount, lit(16, 0));
                    p.assign(refractory, lit(8, 12));
                  },
                  [&] {
                    p.assign(beatR, lit(1, 0));
                    // Sub-threshold local maxima train the noise estimate.
                    p.if_((Ex(rising) & (Ex(integ) < Ex(prevInteg))) == 1u,
                          [&] {
                            p.assign(npki, npkiNext);
                            p.assign(thr, thrNext);
                          });
                  });
          });
  });

  return mb.finish();
}

/// Synthetic blood-flow waveform: a pulsatile train (period 40 samples) with
/// baseline wander and deterministic noise. Pure function of the cycle so
/// every engine replays identical stimuli.
std::uint64_t bloodFlowSample(std::uint64_t c) {
  const double t = static_cast<double>(c);
  const double pulsePhase = static_cast<double>(c % 40) / 40.0;
  // Sharp systolic upstroke, slower decay.
  double pulse = 0.0;
  if (pulsePhase < 0.15) {
    pulse = pulsePhase / 0.15;
  } else {
    pulse = std::exp(-(pulsePhase - 0.15) * 6.0);
  }
  const double baseline = 0.15 * std::sin(t * 0.013);
  // Deterministic noise from a hash of the cycle index.
  util::Prng rng(0x9E3779B97F4A7C15ULL ^ c);
  const double noise = (rng.uniform() - 0.5) * 0.05;
  const double v = 6000.0 * pulse + 1200.0 * baseline + 800.0 * noise;
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(v)) & 0xFFFF;
}

}  // namespace

CaseStudy buildDspCase() {
  CaseStudy cs;
  cs.name = "DSP";
  cs.module = buildDspModule();
  cs.clockGHz = 2.0;  // Table 1 operating point
  cs.periodPs = 500;
  cs.vdd = 1.05;
  cs.hfRatio = 10;
  cs.staThresholdFraction = 0.30;
  cs.staSpreadFraction = 0.97;  // the 2 GHz point leaves every register near-critical
  cs.testbench.name = "blood_flow";
  cs.testbench.cycles = 600;
  cs.testbench.drive = [](std::uint64_t c, const analysis::PortSetter& set) {
    set("rst", c < 2 ? 1 : 0);
    set("sample", bloodFlowSample(c));
  };
  return cs;
}

}  // namespace xlv::ips
