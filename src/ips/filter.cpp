// Filter case study: digital decimation filter of a MEMS smart-microphone
// system (paper Section 8.1; originally produced with Matlab HDL Coder).
//
// Chain: 1-bit PDM input -> 3rd-order CIC decimator (R = 16) -> symmetric
// 5-tap compensation FIR at the decimated rate -> 16-bit PCM output with a
// valid strobe. CIC arithmetic is modular (two's complement wrap), the
// standard Hogenauer construction.
#include "ips/case_study.h"

#include <cmath>
#include <memory>
#include <vector>

#include "ir/builder.h"

namespace xlv::ips {

using namespace xlv::ir;

namespace {

constexpr int kW = 24;      // CIC datapath width: 1 + 3*log2(16) + margin
constexpr int kRate = 16;   // decimation ratio

std::shared_ptr<Module> buildFilterModule() {
  ModuleBuilder mb("decimator");
  auto clk = mb.clock("clk");
  auto rst = mb.in("rst", 1);
  auto pdm = mb.in("pdm", 1);
  auto pcm = mb.out("pcm", 16, /*isSigned=*/true);
  auto valid = mb.out("pcm_valid", 1);

  // --- CIC integrator section (full rate) ---------------------------------------
  auto i1 = mb.signal("i1", kW, true);
  auto i2 = mb.signal("i2", kW, true);
  auto i3 = mb.signal("i3", kW, true);
  auto dec = mb.signal("dec_cnt", 4);
  auto tick = mb.signal("dec_tick", 1);

  // PDM mapped to +1/-1.
  auto xin = mb.signal("x_in", kW, true);
  mb.comb("p_map", [&](ProcBuilder& p) {
    p.assign(xin, sel(Ex(pdm) == 1u, litS(kW, 1), litS(kW, -1)));
  });

  mb.onRising("integrators_p", clk, [&](ProcBuilder& p) {
    p.if_(Ex(rst) == 1u,
          [&] {
            p.assign(i1, lit(kW, 0));
            p.assign(i2, lit(kW, 0));
            p.assign(i3, lit(kW, 0));
          },
          [&] {
            p.assign(i1, Ex(i1) + Ex(xin));
            p.assign(i2, Ex(i2) + Ex(i1));
            p.assign(i3, Ex(i3) + Ex(i2));
          });
  });

  mb.onRising("decimate_p", clk, [&](ProcBuilder& p) {
    p.if_(Ex(rst) == 1u, [&] { p.assign(dec, lit(4, 0)); },
          [&] { p.assign(dec, Ex(dec) + 1u); });
  });
  mb.comb("p_tick", [&](ProcBuilder& p) {
    p.assign(tick, sel((Ex(dec) == lit(4, kRate - 1)) & (Ex(rst) == 0u), lit(1, 1), lit(1, 0)));
  });

  // --- CIC comb section (decimated rate, on tick) ---------------------------------
  auto z1 = mb.signal("z1", kW, true);
  auto z2 = mb.signal("z2", kW, true);
  auto z3 = mb.signal("z3", kW, true);
  auto c1 = mb.signal("c1", kW, true);
  auto c2 = mb.signal("c2", kW, true);
  auto c3 = mb.signal("c3", kW, true);

  mb.comb("p_comb1", [&](ProcBuilder& p) { p.assign(c1, Ex(i3) - Ex(z1)); });
  mb.comb("p_comb2", [&](ProcBuilder& p) { p.assign(c2, Ex(c1) - Ex(z2)); });
  mb.comb("p_comb3", [&](ProcBuilder& p) { p.assign(c3, Ex(c2) - Ex(z3)); });

  mb.onRising("comb_p", clk, [&](ProcBuilder& p) {
    p.if_(Ex(rst) == 1u,
          [&] {
            p.assign(z1, lit(kW, 0));
            p.assign(z2, lit(kW, 0));
            p.assign(z3, lit(kW, 0));
          },
          [&] {
            p.if_(Ex(tick) == 1u, [&] {
              p.assign(z1, i3);
              p.assign(z2, c1);
              p.assign(z3, c2);
            });
          });
  });

  // --- compensation FIR (decimated rate): [-1 4 10 4 -1] / 16 ----------------------
  Sig t[5];
  for (int i = 0; i < 5; ++i) t[i] = mb.signal("t" + std::to_string(i), kW, true);
  auto firAcc = mb.signal("fir_acc", kW + 5, true);
  mb.comb("p_fir", [&](ProcBuilder& p) {
    const int aw = kW + 5;
    Ex acc = neg(sext(Ex(t[0]), aw)) + shl(sext(Ex(t[1]), aw), 2) +
             shl(sext(Ex(t[2]), aw), 3) + shl(sext(Ex(t[2]), aw), 1) +
             shl(sext(Ex(t[3]), aw), 2) - sext(Ex(t[4]), aw);
    p.assign(firAcc, ashr(acc, 4));
  });

  mb.onRising("fir_p", clk, [&](ProcBuilder& p) {
    p.if_(Ex(rst) == 1u,
          [&] {
            for (int i = 0; i < 5; ++i) p.assign(t[i], lit(kW, 0));
          },
          [&] {
            p.if_(Ex(tick) == 1u, [&] {
              p.assign(t[0], c3);
              for (int i = 1; i < 5; ++i) p.assign(t[i], t[i - 1]);
            });
          });
  });

  // --- output scaling: CIC gain R^3 = 4096 => shift by 12, then clamp ----------
  auto pcmR = mb.signal("pcm_r", 16, true);
  auto validR = mb.signal("valid_r", 1);
  auto outCnt = mb.signal("out_cnt", 16);
  mb.onRising("output_p", clk, [&](ProcBuilder& p) {
    p.if_(Ex(rst) == 1u,
          [&] {
            p.assign(pcmR, lit(16, 0));
            p.assign(validR, lit(1, 0));
            p.assign(outCnt, lit(16, 0));
          },
          [&] {
            p.if_(Ex(tick) == 1u,
                  [&] {
                    p.assign(pcmR, slice(ashr(Ex(firAcc), 4), 15, 0));
                    p.assign(validR, lit(1, 1));
                    p.assign(outCnt, Ex(outCnt) + 1u);
                  },
                  [&] { p.assign(validR, lit(1, 0)); });
          });
  });

  mb.comb("p_pcm_out", [&](ProcBuilder& p) { p.assign(pcm, pcmR); });
  mb.comb("p_valid_out", [&](ProcBuilder& p) { p.assign(valid, validR); });

  return mb.finish();
}

/// Precomputed PDM stream: first-order sigma-delta modulation of a slow sine
/// plus a DC offset. Precomputing keeps the testbench a pure function of the
/// cycle index (identical stimuli for every engine and every mutant run).
std::shared_ptr<std::vector<std::uint8_t>> makePdmStream(std::size_t n) {
  auto stream = std::make_shared<std::vector<std::uint8_t>>(n);
  double integrator = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    const double u = 0.45 * std::sin(2.0 * 3.14159265358979 * static_cast<double>(c) / 512.0) +
                     0.2;
    const double y = integrator >= 0.0 ? 1.0 : -1.0;
    integrator += u - y;
    (*stream)[c] = y > 0.0 ? 1 : 0;
  }
  return stream;
}

}  // namespace

CaseStudy buildFilterCase() {
  CaseStudy cs;
  cs.name = "Filter";
  cs.module = buildFilterModule();
  cs.clockGHz = 1.0;  // Table 1 operating point
  cs.periodPs = 1000;
  cs.vdd = 1.05;
  cs.hfRatio = 10;
  cs.staThresholdFraction = 0.30;
  cs.staSpreadFraction = 0.93;  // all sequential stages critical, outputs excluded
  cs.testbench.name = "pdm_sine";
  cs.testbench.cycles = 800;
  auto stream = makePdmStream(4096);
  cs.testbench.drive = [stream](std::uint64_t c, const analysis::PortSetter& set) {
    set("rst", c < 2 ? 1 : 0);
    set("pdm", (*stream)[c % stream->size()]);
  };
  return cs;
}

}  // namespace xlv::ips
