// Plasma case study: a MIPS-I-subset CPU modeled after the opencores Plasma
// core referenced by the paper (Section 8.1, [40]).
//
// Microarchitecture: 3-stage pipeline (Fetch | Decode/register-read |
// Execute/memory/write-back) with:
//   * full forwarding from the Execute stage into the Decode register reads
//     (loads included — memories read combinationally);
//   * branches resolved in Execute with a 2-cycle flush, jumps resolved in
//     Decode with a 1-cycle flush (no delay slots);
//   * 32x32 flip-flop register file, Harvard instruction/data memories as
//     macros, memory-mapped I/O (IO_OUT at 0x1000, IO_IN at 0x1004);
//   * HI/LO and MULT/MFHI/MFLO (unsigned product).
//
// ISA subset: ADD(U) SUB(U) AND OR XOR NOR SLT(U) SLL SRL SRA SLLV SRLV
// SRAV JR MULT MFHI MFLO / ADDI(U) SLTI(U) ANDI ORI XORI LUI LW SW BEQ BNE /
// J JAL.
#include "ips/case_study.h"

#include "ips/mips_asm.h"
#include "ir/builder.h"

namespace xlv::ips {

using namespace xlv::ir;

namespace {

// ALU operation encoding carried in the D/E pipeline register.
enum Alu : std::uint64_t {
  kAluAdd = 0, kAluSub, kAluAnd, kAluOr, kAluXor, kAluNor, kAluSlt, kAluSltu,
  kAluSll, kAluSrl, kAluSra, kAluLui, kAluLink, kAluMfhi, kAluMflo,
  kAluSllv, kAluSrlv, kAluSrav,  // variable shifts: amount = rs[4:0]
};

constexpr std::uint64_t kIoOutAddr = 0x1000;
constexpr std::uint64_t kIoInAddr = 0x1004;

/// The endless firmware: Fibonacci loop with memory traffic and I/O writes,
/// a MULT/MFLO/MFHI block, a JAL/JR subroutine, then re-seed and repeat.
/// Keeps every architectural register and the I/O port toggling forever —
/// the property mutation analysis needs from a testbench (Section 7).
std::vector<std::uint64_t> firmware() {
  using namespace mips;
  std::vector<u32> p;
  // Every iteration of the inner loop exercises ALU, shift, memory, I/O,
  // MULT (with a 2^30 multiplier so HI toggles), a sometimes-taken BEQ, a
  // JAL/JR pair and the BNE back-edge — so every pipeline register changes
  // value every ~20 cycles, which mutation analysis requires of a testbench.
  // 0..6: init
  p.push_back(ADDI(1, 0, 0));       // 0:  $1 = 0 (fib a)
  p.push_back(ADDI(2, 0, 1));       // 1:  $2 = 1 (fib b)
  p.push_back(ADDI(3, 0, 6));       // 2:  $3 = 6 (iterations)
  p.push_back(ADDI(4, 0, 0));       // 3:  $4 = 0 (index)
  p.push_back(ADDI(7, 0, 0x1000));  // 4:  $7 = IO_OUT address
  p.push_back(ADDI(9, 0, 0));       // 5:  $9 = 0 (round seed)
  p.push_back(LUI(8, 0x4000));      // 6:  $8 = 2^30 (wide-product multiplier)
  // 7..23: main loop
  p.push_back(ADD(5, 1, 2));        // 7:  $5 = a + b
  p.push_back(ADD(1, 0, 2));        // 8:  a = b
  p.push_back(ADD(2, 0, 5));        // 9:  b = $5
  p.push_back(SLL(6, 4, 2));        // 10: $6 = idx * 4
  p.push_back(SW(5, 0, 6));         // 11: dmem[idx] = fib
  p.push_back(LW(10, 0, 6));        // 12: $10 = dmem[idx]
  p.push_back(XOR(11, 10, 9));      // 13: $11 = fib ^ seed
  p.push_back(SW(11, 0, 7));        // 14: io_out = fib ^ seed
  p.push_back(MULT(5, 8));          // 15: hi = fib >> 2, lo = fib << 30
  p.push_back(MFLO(12));            // 16
  p.push_back(MFHI(13));            // 17
  p.push_back(ANDI(15, 5, 1));      // 18: parity of fib
  p.push_back(BEQ(15, 0, broff(19, 22)));  // 19: skip call when fib even
  p.push_back(SRA(16, 12, 5));      // 20
  p.push_back(JAL(27));             // 21: call sub (odd fib only)
  p.push_back(ADDI(4, 4, 1));       // 22: ++idx
  p.push_back(BNE(4, 3, broff(23, 7)));  // 23: loop while idx != 6
  p.push_back(SW(13, 0, 7));        // 24: io_out = hi
  p.push_back(ADDI(9, 9, 7));       // 25: seed += 7
  p.push_back(J(37));               // 26: goto reinit
  // 27..31: subroutine
  p.push_back(NOR(17, 5, 9));       // 27
  p.push_back(SLTU(18, 17, 12));    // 28
  p.push_back(SLTI(19, 9, 100));    // 29
  p.push_back(ORI(20, 9, 0x0F0));   // 30
  p.push_back(ANDI(21, 5, 0x7));    // 31: shift amount from fib
  p.push_back(SLLV(22, 12, 21));    // 32: variable shifts
  p.push_back(SRLV(23, 5, 21));     // 33
  p.push_back(SRAV(24, 13, 21));    // 34
  p.push_back(SLTIU(25, 5, 50));    // 35
  p.push_back(JR(31));              // 36: return
  // 37..40: reinit (keep seed) and loop forever
  p.push_back(ADDI(1, 0, 0));       // 37
  p.push_back(ADDI(2, 0, 1));       // 38
  p.push_back(ADDI(4, 0, 0));       // 39
  p.push_back(J(7));                // 40
  return {p.begin(), p.end()};
}

std::shared_ptr<Module> buildPlasmaModule() {
  ModuleBuilder mb("plasma");
  // --- interface ------------------------------------------------------------
  auto clk = mb.clock("clk");
  auto rst = mb.in("rst", 1);
  auto ioIn = mb.in("io_in", 32);
  auto ioOut = mb.out("io_out", 32);
  auto pcOut = mb.out("pc_out", 32);
  auto instretOut = mb.out("instret_out", 32);

  // --- state ------------------------------------------------------------------
  auto pc = mb.signal("pc", 32);
  auto fdInstr = mb.signal("fd_instr", 32);
  auto fdPc4 = mb.signal("fd_pc4", 32);
  auto fdValid = mb.signal("fd_valid", 1);

  auto deRsVal = mb.signal("de_rs_val", 32);
  auto deRtVal = mb.signal("de_rt_val", 32);
  auto deImm = mb.signal("de_imm", 32);
  auto deShamt = mb.signal("de_shamt", 5);
  auto deAluop = mb.signal("de_aluop", 5);
  auto deAlusrc = mb.signal("de_alusrc", 1);
  auto deDest = mb.signal("de_dest", 5);
  auto deRegwrite = mb.signal("de_regwrite", 1);
  auto deMemread = mb.signal("de_memread", 1);
  auto deMemwrite = mb.signal("de_memwrite", 1);
  auto deBeq = mb.signal("de_beq", 1);
  auto deBne = mb.signal("de_bne", 1);
  auto deJr = mb.signal("de_jr", 1);
  auto deMult = mb.signal("de_mult", 1);
  auto deValid = mb.signal("de_valid", 1);
  auto dePc4 = mb.signal("de_pc4", 32);

  auto hi = mb.signal("hi", 32);
  auto lo = mb.signal("lo", 32);
  auto cycleCnt = mb.signal("cycle_cnt", 32);
  auto instret = mb.signal("instret", 32);

  auto rf = mb.array("rf", 32, 32);            // flip-flop register file
  auto imem = mb.memory("imem", 32, 256);      // ROM macro
  auto dmem = mb.memory("dmem", 32, 256);      // SRAM macro
  mb.initArray(imem, firmware());

  // --- fetch -------------------------------------------------------------------
  auto ifInstr = mb.signal("if_instr", 32);
  mb.comb("p_fetch", [&](ProcBuilder& p) {
    p.assign(ifInstr, at(imem, slice(Ex(pc), 9, 2)));
  });

  // --- decode: instruction fields (one small process per field, mirroring
  // --- fine-grained RTL decode blocks) -------------------------------------
  auto fOp = mb.signal("f_op", 6);
  auto fRs = mb.signal("f_rs", 5);
  auto fRt = mb.signal("f_rt", 5);
  auto fRd = mb.signal("f_rd", 5);
  auto fShamt = mb.signal("f_shamt", 5);
  auto fFunct = mb.signal("f_funct", 6);
  auto fImm16 = mb.signal("f_imm16", 16);
  mb.comb("p_f_op", [&](ProcBuilder& p) { p.assign(fOp, slice(Ex(fdInstr), 31, 26)); });
  mb.comb("p_f_rs", [&](ProcBuilder& p) { p.assign(fRs, slice(Ex(fdInstr), 25, 21)); });
  mb.comb("p_f_rt", [&](ProcBuilder& p) { p.assign(fRt, slice(Ex(fdInstr), 20, 16)); });
  mb.comb("p_f_rd", [&](ProcBuilder& p) { p.assign(fRd, slice(Ex(fdInstr), 15, 11)); });
  mb.comb("p_f_shamt", [&](ProcBuilder& p) { p.assign(fShamt, slice(Ex(fdInstr), 10, 6)); });
  mb.comb("p_f_funct", [&](ProcBuilder& p) { p.assign(fFunct, slice(Ex(fdInstr), 5, 0)); });
  mb.comb("p_f_imm", [&](ProcBuilder& p) { p.assign(fImm16, slice(Ex(fdInstr), 15, 0)); });

  // --- decode: control --------------------------------------------------------
  auto ctlAluop = mb.signal("ctl_aluop", 5);
  auto ctlRegwrite = mb.signal("ctl_regwrite", 1);
  auto ctlDest = mb.signal("ctl_dest", 5);
  auto ctlAlusrc = mb.signal("ctl_alusrc", 1);
  auto ctlMemread = mb.signal("ctl_memread", 1);
  auto ctlMemwrite = mb.signal("ctl_memwrite", 1);
  auto ctlBeq = mb.signal("ctl_beq", 1);
  auto ctlBne = mb.signal("ctl_bne", 1);
  auto ctlJump = mb.signal("ctl_jump", 1);
  auto ctlJal = mb.signal("ctl_jal", 1);
  auto ctlJr = mb.signal("ctl_jr", 1);
  auto ctlMult = mb.signal("ctl_mult", 1);
  auto ctlZeroExt = mb.signal("ctl_zero_ext", 1);

  mb.comb("p_control", [&](ProcBuilder& p) {
    // Defaults.
    p.assign(ctlAluop, lit(5, kAluAdd));
    p.assign(ctlRegwrite, lit(1, 0));
    p.assign(ctlDest, fRt);
    p.assign(ctlAlusrc, lit(1, 1));
    p.assign(ctlMemread, lit(1, 0));
    p.assign(ctlMemwrite, lit(1, 0));
    p.assign(ctlBeq, lit(1, 0));
    p.assign(ctlBne, lit(1, 0));
    p.assign(ctlJump, lit(1, 0));
    p.assign(ctlJal, lit(1, 0));
    p.assign(ctlJr, lit(1, 0));
    p.assign(ctlMult, lit(1, 0));
    p.assign(ctlZeroExt, lit(1, 0));
    p.switch_(
        Ex(fOp),
        {
            {{0x00},  // R-type: sub-decode on funct
             [&] {
               p.assign(ctlAlusrc, lit(1, 0));
               p.assign(ctlDest, fRd);
               p.switch_(
                   Ex(fFunct),
                   {
                       {{0x20, 0x21},
                        [&] {
                          p.assign(ctlAluop, lit(5, kAluAdd));
                          p.assign(ctlRegwrite, lit(1, 1));
                        }},
                       {{0x22, 0x23},
                        [&] {
                          p.assign(ctlAluop, lit(5, kAluSub));
                          p.assign(ctlRegwrite, lit(1, 1));
                        }},
                       {{0x24},
                        [&] {
                          p.assign(ctlAluop, lit(5, kAluAnd));
                          p.assign(ctlRegwrite, lit(1, 1));
                        }},
                       {{0x25},
                        [&] {
                          p.assign(ctlAluop, lit(5, kAluOr));
                          p.assign(ctlRegwrite, lit(1, 1));
                        }},
                       {{0x26},
                        [&] {
                          p.assign(ctlAluop, lit(5, kAluXor));
                          p.assign(ctlRegwrite, lit(1, 1));
                        }},
                       {{0x27},
                        [&] {
                          p.assign(ctlAluop, lit(5, kAluNor));
                          p.assign(ctlRegwrite, lit(1, 1));
                        }},
                       {{0x2A},
                        [&] {
                          p.assign(ctlAluop, lit(5, kAluSlt));
                          p.assign(ctlRegwrite, lit(1, 1));
                        }},
                       {{0x2B},
                        [&] {
                          p.assign(ctlAluop, lit(5, kAluSltu));
                          p.assign(ctlRegwrite, lit(1, 1));
                        }},
                       {{0x00},
                        [&] {
                          p.assign(ctlAluop, lit(5, kAluSll));
                          p.assign(ctlRegwrite, lit(1, 1));
                        }},
                       {{0x02},
                        [&] {
                          p.assign(ctlAluop, lit(5, kAluSrl));
                          p.assign(ctlRegwrite, lit(1, 1));
                        }},
                       {{0x03},
                        [&] {
                          p.assign(ctlAluop, lit(5, kAluSra));
                          p.assign(ctlRegwrite, lit(1, 1));
                        }},
                       {{0x04},
                        [&] {
                          p.assign(ctlAluop, lit(5, kAluSllv));
                          p.assign(ctlRegwrite, lit(1, 1));
                        }},
                       {{0x06},
                        [&] {
                          p.assign(ctlAluop, lit(5, kAluSrlv));
                          p.assign(ctlRegwrite, lit(1, 1));
                        }},
                       {{0x07},
                        [&] {
                          p.assign(ctlAluop, lit(5, kAluSrav));
                          p.assign(ctlRegwrite, lit(1, 1));
                        }},
                       {{0x08}, [&] { p.assign(ctlJr, lit(1, 1)); }},
                       {{0x18}, [&] { p.assign(ctlMult, lit(1, 1)); }},
                       {{0x10},
                        [&] {
                          p.assign(ctlAluop, lit(5, kAluMfhi));
                          p.assign(ctlRegwrite, lit(1, 1));
                        }},
                       {{0x12},
                        [&] {
                          p.assign(ctlAluop, lit(5, kAluMflo));
                          p.assign(ctlRegwrite, lit(1, 1));
                        }},
                   },
                   [] {});
             }},
            {{0x08, 0x09},  // ADDI / ADDIU
             [&] { p.assign(ctlRegwrite, lit(1, 1)); }},
            {{0x0A},  // SLTI
             [&] {
               p.assign(ctlAluop, lit(5, kAluSlt));
               p.assign(ctlRegwrite, lit(1, 1));
             }},
            {{0x0B},  // SLTIU
             [&] {
               p.assign(ctlAluop, lit(5, kAluSltu));
               p.assign(ctlRegwrite, lit(1, 1));
             }},
            {{0x0C},  // ANDI
             [&] {
               p.assign(ctlAluop, lit(5, kAluAnd));
               p.assign(ctlRegwrite, lit(1, 1));
               p.assign(ctlZeroExt, lit(1, 1));
             }},
            {{0x0D},  // ORI
             [&] {
               p.assign(ctlAluop, lit(5, kAluOr));
               p.assign(ctlRegwrite, lit(1, 1));
               p.assign(ctlZeroExt, lit(1, 1));
             }},
            {{0x0E},  // XORI
             [&] {
               p.assign(ctlAluop, lit(5, kAluXor));
               p.assign(ctlRegwrite, lit(1, 1));
               p.assign(ctlZeroExt, lit(1, 1));
             }},
            {{0x0F},  // LUI
             [&] {
               p.assign(ctlAluop, lit(5, kAluLui));
               p.assign(ctlRegwrite, lit(1, 1));
               p.assign(ctlZeroExt, lit(1, 1));
             }},
            {{0x23},  // LW
             [&] {
               p.assign(ctlMemread, lit(1, 1));
               p.assign(ctlRegwrite, lit(1, 1));
             }},
            {{0x2B},  // SW
             [&] { p.assign(ctlMemwrite, lit(1, 1)); }},
            {{0x04}, [&] { p.assign(ctlBeq, lit(1, 1)); }},   // BEQ
            {{0x05}, [&] { p.assign(ctlBne, lit(1, 1)); }},   // BNE
            {{0x02}, [&] { p.assign(ctlJump, lit(1, 1)); }},  // J
            {{0x03},  // JAL
             [&] {
               p.assign(ctlJump, lit(1, 1));
               p.assign(ctlJal, lit(1, 1));
               p.assign(ctlRegwrite, lit(1, 1));
               p.assign(ctlDest, lit(5, 31));
               p.assign(ctlAluop, lit(5, kAluLink));
             }},
        },
        [] {});
  });

  // --- decode: immediate extension ---------------------------------------------
  auto immExt = mb.signal("imm_ext", 32);
  mb.comb("p_imm_ext", [&](ProcBuilder& p) {
    p.assign(immExt, sel(Ex(ctlZeroExt) == 1u, zext(Ex(fImm16), 32), sext(Ex(fImm16), 32)));
  });

  // --- execute-stage combinational (declared before use in decode forwarding) --
  auto aluOut = mb.signal("alu_out", 32);
  auto eResult = mb.signal("e_result", 32);

  // --- decode: register read with forwarding from Execute ----------------------
  auto rsVal = mb.signal("rs_val", 32);
  auto rtVal = mb.signal("rt_val", 32);
  mb.comb("p_fwd_rs", [&](ProcBuilder& p) {
    const Ex fwd = (Ex(deValid) == 1u) & (Ex(deRegwrite) == 1u) & (Ex(deDest) == Ex(fRs)) &
                   (Ex(fRs) != 0u);
    p.assign(rsVal, sel(fwd == 1u, eResult, at(rf, Ex(fRs))));
  });
  mb.comb("p_fwd_rt", [&](ProcBuilder& p) {
    const Ex fwd = (Ex(deValid) == 1u) & (Ex(deRegwrite) == 1u) & (Ex(deDest) == Ex(fRt)) &
                   (Ex(fRt) != 0u);
    p.assign(rtVal, sel(fwd == 1u, eResult, at(rf, Ex(fRt))));
  });

  // --- decode: jump resolution ---------------------------------------------------
  auto jumpTgt = mb.signal("jump_tgt", 32);
  auto doJump = mb.signal("do_jump", 1);
  mb.comb("p_jump_tgt", [&](ProcBuilder& p) {
    p.assign(jumpTgt, (Ex(fdPc4) & lit(32, 0xF0000000ull)) |
                          shl(zext(slice(Ex(fdInstr), 25, 0), 32), 2));
  });

  // --- execute: ALU ---------------------------------------------------------------
  auto aluB = mb.signal("alu_b", 32);
  mb.comb("p_alu_src", [&](ProcBuilder& p) {
    p.assign(aluB, sel(Ex(deAlusrc) == 1u, Ex(deImm), Ex(deRtVal)));
  });
  mb.comb("p_alu", [&](ProcBuilder& p) {
    p.switch_(
        Ex(deAluop),
        {
            {{kAluAdd}, [&] { p.assign(aluOut, Ex(deRsVal) + Ex(aluB)); }},
            {{kAluSub}, [&] { p.assign(aluOut, Ex(deRsVal) - Ex(aluB)); }},
            {{kAluAnd}, [&] { p.assign(aluOut, Ex(deRsVal) & Ex(aluB)); }},
            {{kAluOr}, [&] { p.assign(aluOut, Ex(deRsVal) | Ex(aluB)); }},
            {{kAluXor}, [&] { p.assign(aluOut, Ex(deRsVal) ^ Ex(aluB)); }},
            {{kAluNor}, [&] { p.assign(aluOut, ~(Ex(deRsVal) | Ex(aluB))); }},
            {{kAluSlt},
             [&] {
               // Signed comparison via sign-flipped unsigned compare.
               const Ex bias = lit(32, 0x80000000ull);
               p.assign(aluOut,
                        zext((Ex(deRsVal) ^ bias) < (Ex(aluB) ^ bias), 32));
             }},
            {{kAluSltu}, [&] { p.assign(aluOut, zext(Ex(deRsVal) < Ex(aluB), 32)); }},
            {{kAluSll}, [&] { p.assign(aluOut, shl(Ex(deRtVal), Ex(deShamt))); }},
            {{kAluSrl}, [&] { p.assign(aluOut, shr(Ex(deRtVal), Ex(deShamt))); }},
            {{kAluSra}, [&] { p.assign(aluOut, ashr(Ex(deRtVal), Ex(deShamt))); }},
            {{kAluLui}, [&] { p.assign(aluOut, shl(Ex(deImm), 16)); }},
            {{kAluLink}, [&] { p.assign(aluOut, dePc4); }},
            {{kAluMfhi}, [&] { p.assign(aluOut, hi); }},
            {{kAluMflo}, [&] { p.assign(aluOut, lo); }},
            {{kAluSllv}, [&] { p.assign(aluOut, shl(Ex(deRtVal), slice(Ex(deRsVal), 4, 0))); }},
            {{kAluSrlv}, [&] { p.assign(aluOut, shr(Ex(deRtVal), slice(Ex(deRsVal), 4, 0))); }},
            {{kAluSrav},
             [&] { p.assign(aluOut, ashr(Ex(deRtVal), slice(Ex(deRsVal), 4, 0))); }},
        },
        [&] { p.assign(aluOut, lit(32, 0)); });
  });

  // --- execute: memory ---------------------------------------------------------
  auto memRdata = mb.signal("mem_rdata", 32);
  mb.comb("p_mem_read", [&](ProcBuilder& p) {
    p.assign(memRdata, sel(Ex(aluOut) == lit(32, kIoInAddr), Ex(ioIn),
                           at(dmem, slice(Ex(aluOut), 9, 2))));
  });
  mb.comb("p_result", [&](ProcBuilder& p) {
    p.assign(eResult, sel(Ex(deMemread) == 1u, Ex(memRdata), Ex(aluOut)));
  });

  // --- execute: branch resolution -----------------------------------------------
  auto redirect = mb.signal("redirect", 1);
  auto redirectTgt = mb.signal("redirect_tgt", 32);
  mb.comb("p_branch", [&](ProcBuilder& p) {
    const Ex eq = Ex(deRsVal) == Ex(deRtVal);
    const Ex taken = (Ex(deBeq) & eq) | (Ex(deBne) & bnot(eq)) | Ex(deJr);
    p.assign(redirect, Ex(deValid) & taken);
  });
  mb.comb("p_branch_tgt", [&](ProcBuilder& p) {
    p.assign(redirectTgt, sel(Ex(deJr) == 1u, Ex(deRsVal), Ex(dePc4) + shl(Ex(deImm), 2)));
  });
  mb.comb("p_do_jump", [&](ProcBuilder& p) {
    p.assign(doJump, Ex(fdValid) & Ex(ctlJump) & bnot(Ex(redirect)));
  });

  // --- debug/port mirrors ----------------------------------------------------------
  mb.comb("p_pc_out", [&](ProcBuilder& p) { p.assign(pcOut, pc); });
  mb.comb("p_instret_out", [&](ProcBuilder& p) { p.assign(instretOut, instret); });

  // --- synchronous processes ----------------------------------------------------
  mb.onRising("pc_p", clk, [&](ProcBuilder& p) {
    p.if_(Ex(rst) == 1u, [&] { p.assign(pc, lit(32, 0)); },
          [&] {
            p.if_(Ex(redirect) == 1u, [&] { p.assign(pc, redirectTgt); },
                  [&] {
                    p.if_(Ex(doJump) == 1u, [&] { p.assign(pc, jumpTgt); },
                          [&] { p.assign(pc, Ex(pc) + 4u); });
                  });
          });
  });

  mb.onRising("fd_p", clk, [&](ProcBuilder& p) {
    p.if_((Ex(rst) | Ex(redirect) | Ex(doJump)) == 1u,
          [&] {
            p.assign(fdInstr, lit(32, 0));
            p.assign(fdValid, lit(1, 0));
            p.assign(fdPc4, lit(32, 4));
          },
          [&] {
            p.assign(fdInstr, ifInstr);
            p.assign(fdPc4, Ex(pc) + 4u);
            p.assign(fdValid, lit(1, 1));
          });
  });

  mb.onRising("de_p", clk, [&](ProcBuilder& p) {
    p.if_((Ex(rst) | Ex(redirect)) == 1u,
          [&] {
            p.assign(deValid, lit(1, 0));
            p.assign(deRegwrite, lit(1, 0));
            p.assign(deMemread, lit(1, 0));
            p.assign(deMemwrite, lit(1, 0));
            p.assign(deBeq, lit(1, 0));
            p.assign(deBne, lit(1, 0));
            p.assign(deJr, lit(1, 0));
            p.assign(deMult, lit(1, 0));
          },
          [&] {
            p.assign(deRsVal, rsVal);
            p.assign(deRtVal, rtVal);
            p.assign(deImm, immExt);
            p.assign(deShamt, fShamt);
            p.assign(deAluop, ctlAluop);
            p.assign(deAlusrc, ctlAlusrc);
            p.assign(deDest, ctlDest);
            p.assign(dePc4, fdPc4);
            p.assign(deValid, fdValid);
            p.assign(deRegwrite, Ex(ctlRegwrite) & Ex(fdValid));
            p.assign(deMemread, Ex(ctlMemread) & Ex(fdValid));
            p.assign(deMemwrite, Ex(ctlMemwrite) & Ex(fdValid));
            p.assign(deBeq, Ex(ctlBeq) & Ex(fdValid));
            p.assign(deBne, Ex(ctlBne) & Ex(fdValid));
            p.assign(deJr, Ex(ctlJr) & Ex(fdValid));
            p.assign(deMult, Ex(ctlMult) & Ex(fdValid));
          });
  });

  mb.onRising("rf_wr_p", clk, [&](ProcBuilder& p) {
    p.if_((Ex(deValid) & Ex(deRegwrite)) == 1u, [&] {
      p.if_(Ex(deDest) != 0u, [&] { p.write(rf, Ex(deDest), Ex(eResult)); });
    });
  });

  mb.onRising("dmem_wr_p", clk, [&](ProcBuilder& p) {
    p.if_((Ex(deValid) & Ex(deMemwrite)) == 1u, [&] {
      p.if_(Ex(aluOut) != lit(32, kIoOutAddr),
            [&] { p.write(dmem, slice(Ex(aluOut), 9, 2), Ex(deRtVal)); });
    });
  });

  mb.onRising("io_p", clk, [&](ProcBuilder& p) {
    p.if_(Ex(rst) == 1u, [&] { p.assign(ioOut, lit(32, 0)); },
          [&] {
            p.if_((Ex(deValid) & Ex(deMemwrite)) == 1u, [&] {
              p.if_(Ex(aluOut) == lit(32, kIoOutAddr), [&] { p.assign(ioOut, deRtVal); });
            });
          });
  });

  mb.onRising("hilo_p", clk, [&](ProcBuilder& p) {
    p.if_((Ex(deValid) & Ex(deMult)) == 1u, [&] {
      const Ex prod = zext(Ex(deRsVal), 64) * zext(Ex(deRtVal), 64);
      p.assign(hi, slice(prod, 63, 32));
      p.assign(lo, slice(prod, 31, 0));
    });
  });

  mb.onRising("cnt_p", clk, [&](ProcBuilder& p) {
    p.if_(Ex(rst) == 1u,
          [&] {
            p.assign(cycleCnt, lit(32, 0));
            p.assign(instret, lit(32, 0));
          },
          [&] {
            p.assign(cycleCnt, Ex(cycleCnt) + 1u);
            p.if_(Ex(deValid) == 1u, [&] { p.assign(instret, Ex(instret) + 1u); });
          });
  });

  return mb.finish();
}

}  // namespace

CaseStudy buildPlasmaCase() {
  CaseStudy cs;
  cs.name = "Plasma";
  cs.module = buildPlasmaModule();
  cs.clockGHz = 0.2;  // Table 1 operating point
  cs.periodPs = 5000;
  cs.vdd = 1.05;
  cs.hfRatio = 10;
  cs.staThresholdFraction = 0.30;
  cs.staSpreadFraction = 0.60;  // bins the pipeline/datapath endpoints critical
  cs.testbench.name = "plasma_fw";
  cs.testbench.cycles = 400;
  cs.testbench.drive = [](std::uint64_t c, const analysis::PortSetter& set) {
    set("rst", c < 2 ? 1 : 0);
    set("io_in", 0xC0FFEE00ull + (c / 16));
  };
  return cs;
}

}  // namespace xlv::ips
