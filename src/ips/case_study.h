// Case-study descriptor: everything the flow and the benches need to run one
// of the paper's three IPs (Section 8.1 / Table 1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "analysis/testbench.h"
#include "ir/module.h"

namespace xlv::ips {

struct CaseStudy {
  std::string name;
  std::shared_ptr<const ir::Module> module;
  double clockGHz = 1.0;
  std::uint64_t periodPs = 1000;
  double vdd = 1.05;                  ///< Table 1's V-f operating point
  int hfRatio = 10;                   ///< Counter-version HF clock ratio
  double staThresholdFraction = 0.18; ///< slack threshold as fraction of period
  /// Spread-relative critical binning (see sta::StaConfig::spreadFraction);
  /// tuned per IP to reproduce a critical set comparable to Table 2.
  double staSpreadFraction = 0.6;
  analysis::Testbench testbench;
};

/// MIPS R3000A-subset CPU ("Plasma" case study): 3-stage pipeline with
/// forwarding and branch flush, 32x32 register file, Harvard memories,
/// memory-mapped I/O; runs an endless Fibonacci/MULT/JAL workload.
CaseStudy buildPlasmaCase();

/// Heart-rate-detection DSP: Pan-Tompkins-style chain (band-pass, derivative,
/// squaring, integration, adaptive-threshold peak detection) over a
/// synthetic blood-flow waveform.
CaseStudy buildDspCase();

/// MEMS-microphone decimation filter: CIC3 decimator plus compensation FIR,
/// 1-bit PDM in, 16-bit PCM out.
CaseStudy buildFilterCase();

/// Stateful-protocol case study (beyond the paper's three IPs): a req/ack
/// handshake target with a multi-cycle MAC datapath. Its testbench is
/// makeDriver-only — a per-session protocol FSM with an incremental PRNG —
/// exercising the campaign's per-task seeded driver contract end to end.
CaseStudy buildHandshakeCase();

}  // namespace xlv::ips
