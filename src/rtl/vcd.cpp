#include "rtl/vcd.h"

#include <algorithm>
#include <cctype>

namespace xlv::rtl {

namespace {
/// VCD identifiers are short printable-ASCII strings: base-94 encode.
std::string vcdId(int index) {
  std::string id;
  int x = index;
  do {
    id.push_back(static_cast<char>('!' + x % 94));
    x /= 94;
  } while (x > 0);
  return id;
}

/// VCD identifiers may not contain whitespace; scrub hierarchical names into
/// legal "wire" names.
std::string scrubName(const std::string& name) {
  std::string s = name;
  std::replace(s.begin(), s.end(), '.', '_');
  return s;
}
}  // namespace

VcdWriter::VcdWriter(const std::string& path, const ir::Design& design,
                     const std::string& timescale)
    : out_(path) {
  idOf_.resize(design.symbols.size());
  widthOf_.resize(design.symbols.size(), 0);

  out_ << "$date xlv simulation $end\n";
  out_ << "$version xlv rtl kernel $end\n";
  out_ << "$timescale " << timescale << " $end\n";
  out_ << "$scope module " << scrubName(design.name) << " $end\n";
  for (std::size_t i = 0; i < design.symbols.size(); ++i) {
    const auto& sym = design.symbols[i];
    if (sym.kind == ir::SymKind::Array) continue;  // arrays are not traced
    idOf_[i] = vcdId(static_cast<int>(i));
    widthOf_[i] = sym.type.width;
    out_ << "$var wire " << sym.type.width << " " << idOf_[i] << " " << scrubName(sym.name);
    if (sym.type.width > 1) out_ << " [" << sym.type.width - 1 << ":0]";
    out_ << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
}

VcdWriter::~VcdWriter() { out_.flush(); }

void VcdWriter::timestamp(std::uint64_t timePs) {
  if (timePs == lastTime_) return;
  lastTime_ = timePs;
  out_ << '#' << timePs << '\n';
}

void VcdWriter::change(ir::SymbolId sym, const std::string& bits) {
  const auto i = static_cast<std::size_t>(sym);
  if (i >= idOf_.size() || idOf_[i].empty()) return;
  std::string lower = bits;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (widthOf_[i] == 1) {
    out_ << lower << idOf_[i] << '\n';
  } else {
    out_ << 'b' << lower << ' ' << idOf_[i] << '\n';
  }
}

}  // namespace xlv::rtl
