// Event-driven RTL simulation kernel with delta cycles.
//
// This is the "HDL simulator" substrate of the flow (paper Fig. 6a): on each
// clock edge the synchronous processes run, then asynchronous processes wake
// in delta-cycle iterations until the design settles. Signals update through
// a nonblocking write buffer committed at delta boundaries; a time wheel
// carries clock edges, testbench stimulus and transport-delayed writes.
//
// Intra-cycle timing model (documented in DESIGN.md):
//   cycle k occupies [kT, (k+1)T) with period T:
//     kT           stimulus point (testbench drives inputs; logic settles)
//     kT + T/4     main clock rising edge
//     kT + T/4 + j*S   high-frequency tick j (j = 1..R), S = (T/2)/(R+1)
//     kT + 3T/4    main clock falling edge
//   The Razor detection window [rising, falling] is exactly half a period,
//   and the R high-frequency ticks subdivide it — giving the Counter-based
//   sensor its resolution of S picoseconds, matching the paper's "maximum
//   resolution is the HF_CLK period".
//
// Delay injection: injectDelay(sig, d) turns every update of `sig` into a
// transport-delayed assignment (VHDL `after d ps`), the mechanism the paper
// uses to validate TLM mutants against RTL (Section 8.5).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/elaborate.h"
#include "ir/eval.h"
#include "rtl/vcd.h"
#include "util/log.h"

namespace xlv::rtl {

struct KernelStats {
  std::uint64_t mainCycles = 0;
  std::uint64_t deltaCycles = 0;
  std::uint64_t processRuns = 0;
  std::uint64_t commits = 0;
  std::uint64_t scheduledEvents = 0;
};

struct KernelConfig {
  std::uint64_t mainPeriodPs = 1000;
  int hfRatio = 0;           ///< 0 = no high-frequency clock
  int deltaLimit = 10000;    ///< combinational-loop guard
};

/// A restorable state of one RtlSimulator, valid at the cycle boundary
/// (between runCycles calls): signal/array values, the pending time-wheel
/// events (transport-delayed writes can mature cycles later), the woken
/// process set and the simulation clocks. Injected delays (injectDelay) are
/// configuration, not state, and are deliberately not captured; the VCD
/// writer and stats likewise keep accumulating across a restore.
template <class P>
struct RtlSnapshot {
  ir::ValueStore<P> store;
  std::map<std::uint64_t, std::vector<ir::SignalWrite<P>>> wheel;
  std::vector<int> woken;
  std::vector<char> wokenFlag;
  std::uint64_t timePs = 0;
  std::uint64_t cycle = 0;
};

template <class P>
class RtlSimulator {
 public:
  using Vec = typename P::Vec;
  using Stimulus = std::function<void(std::uint64_t cycle, RtlSimulator&)>;

  RtlSimulator(const ir::Design& design, KernelConfig cfg)
      : d_(design), cfg_(cfg), store_(design), exec_(design, store_) {
    if (cfg_.hfRatio > 0 && d_.hfClock == ir::kNoSymbol) {
      throw std::invalid_argument("RtlSimulator: hfRatio set but design has no HF clock");
    }
    buildIndices();
    // HDL initialization semantics: every (combinational) process executes
    // once at simulation start so outputs reflect the initial signal values.
    for (std::size_t pi = 0; pi < d_.processes.size(); ++pi) {
      if (!d_.processes[pi].isSync) {
        wokenFlag_[pi] = true;
        woken_.push_back(static_cast<int>(pi));
      }
    }
  }

  const ir::Design& design() const noexcept { return d_; }
  ir::ValueStore<P>& store() noexcept { return store_; }
  const ir::ValueStore<P>& store() const noexcept { return store_; }
  const KernelStats& stats() const noexcept { return stats_; }
  std::uint64_t timePs() const noexcept { return timePs_; }

  void setStimulus(Stimulus s) { stimulus_ = std::move(s); }
  void attachVcd(VcdWriter* vcd) noexcept { vcd_ = vcd; }

  /// Drive an input port immediately (normally called from the stimulus
  /// callback, which runs at the cycle's stimulus point).
  void setInput(ir::SymbolId sym, const Vec& v) {
    if (!store_.get(sym).identical(v)) {
      store_.set(sym, v);
      traceChange(sym);
      markChanged(sym);
    }
  }
  void setInput(ir::SymbolId sym, std::uint64_t v) {
    setInput(sym, Vec::fromUint(d_.symbol(sym).type.width, v));
  }
  void setInputByName(const std::string& name, std::uint64_t v) {
    setInput(mustFind(name), v);
  }

  const Vec& value(ir::SymbolId sym) const noexcept { return store_.get(sym); }
  std::uint64_t valueUint(ir::SymbolId sym) const noexcept { return store_.get(sym).toUint(); }
  std::uint64_t valueUintByName(const std::string& name) const {
    return store_.get(mustFind(name)).toUint();
  }

  /// All subsequent updates of `sym` become transport-delayed by `delayPs`.
  void injectDelay(ir::SymbolId sym, std::uint64_t delayPs) { delayOf_[sym] = delayPs; }
  void clearDelay(ir::SymbolId sym) { delayOf_.erase(sym); }
  void clearAllDelays() { delayOf_.clear(); }

  /// Advance the simulation by `n` main-clock cycles.
  void runCycles(std::uint64_t n) {
    const std::uint64_t target = cycle_ + n;
    while (cycle_ < target) {
      stepCycle();
    }
  }

  // --- checkpointing ---------------------------------------------------------
  /// Capture the full simulation state between runCycles calls (the
  /// nonblocking buffer is always drained at that boundary).
  RtlSnapshot<P> snapshot() const {
    return RtlSnapshot<P>{store_, wheel_, woken_, wokenFlag_, timePs_, cycle_};
  }

  /// Restore a snapshot taken from a simulator over the same design. Throws
  /// std::invalid_argument on a shape mismatch (different process count).
  void restore(const RtlSnapshot<P>& s) {
    if (s.wokenFlag.size() != wokenFlag_.size()) {
      throw std::invalid_argument("RtlSimulator: snapshot shape mismatch");
    }
    store_ = s.store;
    wheel_ = s.wheel;
    woken_ = s.woken;
    wokenFlag_ = s.wokenFlag;
    timePs_ = s.timePs;
    cycle_ = s.cycle;
    nba_.clear();
  }

 private:
  // --- construction-time indices -------------------------------------------
  void buildIndices() {
    sensitiveTo_.assign(d_.symbols.size(), {});
    for (std::size_t pi = 0; pi < d_.processes.size(); ++pi) {
      const auto& p = d_.processes[pi];
      if (p.isSync) {
        const bool rising = p.edge == ir::EdgeKind::Rising;
        if (p.clock == d_.mainClock) {
          if (p.postEdge) {
            mainPost_.push_back(static_cast<int>(pi));
          } else {
            (rising ? mainRise_ : mainFall_).push_back(static_cast<int>(pi));
          }
        } else if (p.clock == d_.hfClock) {
          (rising ? hfRise_ : hfFall_).push_back(static_cast<int>(pi));
        } else {
          throw std::invalid_argument("RtlSimulator: sync process '" + p.name +
                                      "' uses an unknown clock");
        }
      } else {
        for (ir::SymbolId s : p.sensitivity) {
          // Clock symbols never feed combinational sensitivity.
          if (s == d_.mainClock || s == d_.hfClock) continue;
          sensitiveTo_[static_cast<std::size_t>(s)].push_back(static_cast<int>(pi));
        }
      }
    }
  }

  // --- per-cycle schedule ----------------------------------------------------
  void stepCycle() {
    const std::uint64_t T = cfg_.mainPeriodPs;
    const std::uint64_t base = cycle_ * T;

    // Stimulus point.
    advanceTo(base);
    if (stimulus_) stimulus_(cycle_, *this);
    settle();

    // Rising edge.
    advanceTo(base + T / 4);
    setClockValue(d_.mainClock, 1);
    runProcesses(mainRise_);
    settle();

    // Post-edge samplers: run after the edge's commits have settled but
    // before any transport-delayed update can mature (those carry t > edge).
    if (!mainPost_.empty()) {
      runProcesses(mainPost_);
      settle();
    }

    // High-frequency ticks inside the detection window.
    if (cfg_.hfRatio > 0) {
      const std::uint64_t S = (T / 2) / static_cast<std::uint64_t>(cfg_.hfRatio + 1);
      for (int j = 1; j <= cfg_.hfRatio; ++j) {
        advanceTo(base + T / 4 + static_cast<std::uint64_t>(j) * S);
        setClockValue(d_.hfClock, 1);
        runProcesses(hfRise_);
        settle();
        // Falling half of the hf pulse, half a tick later.
        advanceTo(base + T / 4 + static_cast<std::uint64_t>(j) * S + S / 2);
        setClockValue(d_.hfClock, 0);
        runProcesses(hfFall_);
        settle();
      }
    }

    // Falling edge.
    advanceTo(base + 3 * T / 4);
    setClockValue(d_.mainClock, 0);
    runProcesses(mainFall_);
    settle();

    // Drain any transport-delayed writes landing before the next cycle.
    advanceTo(base + T - 1);

    ++cycle_;
    ++stats_.mainCycles;
  }

  /// Process all time-wheel events with t <= `t`, then move time to `t`.
  void advanceTo(std::uint64_t t) {
    while (!wheel_.empty() && wheel_.begin()->first <= t) {
      auto it = wheel_.begin();
      timePs_ = it->first;
      traceTime();
      auto writes = std::move(it->second);
      wheel_.erase(it);
      for (auto& w : writes) {
        if (ir::commitWrite(store_, w)) {
          ++stats_.commits;
          traceChange(w.sym);
          markChanged(w.sym);
        }
      }
      settle();
    }
    timePs_ = t;
    traceTime();
  }

  void setClockValue(ir::SymbolId clk, std::uint64_t v) {
    store_.set(clk, Vec::fromUint(1, v));
    traceChange(clk);
  }

  void runProcesses(const std::vector<int>& procs) {
    for (int pi : procs) {
      ++stats_.processRuns;
      exec_.run(*d_.processes[static_cast<std::size_t>(pi)].body, nba_);
    }
    flushNba();
  }

  /// Move buffered nonblocking writes either to the store (normal) or onto
  /// the time wheel (signals with injected transport delay).
  void flushNba() {
    for (auto& w : nba_) {
      if (!delayOf_.empty()) {
        auto it = delayOf_.find(w.sym);
        if (it != delayOf_.end() && it->second > 0) {
          wheel_[timePs_ + it->second].push_back(std::move(w));
          ++stats_.scheduledEvents;
          continue;
        }
      }
      if (ir::commitWrite(store_, w)) {
        ++stats_.commits;
        traceChange(w.sym);
        markChanged(w.sym);
      }
    }
    nba_.clear();
  }

  void markChanged(ir::SymbolId s) {
    for (int pi : sensitiveTo_[static_cast<std::size_t>(s)]) {
      if (!wokenFlag_[static_cast<std::size_t>(pi)]) {
        wokenFlag_[static_cast<std::size_t>(pi)] = true;
        woken_.push_back(pi);
      }
    }
  }

  /// Delta-cycle loop: run woken async processes until stable.
  void settle() {
    int deltas = 0;
    while (!woken_.empty()) {
      if (++deltas > cfg_.deltaLimit) {
        throw std::runtime_error("RtlSimulator: delta limit exceeded (combinational loop?) in '" +
                                 d_.name + "'");
      }
      ++stats_.deltaCycles;
      auto batch = std::move(woken_);
      woken_.clear();
      for (int pi : batch) wokenFlag_[static_cast<std::size_t>(pi)] = false;
      for (int pi : batch) {
        ++stats_.processRuns;
        exec_.run(*d_.processes[static_cast<std::size_t>(pi)].body, nba_);
      }
      flushNba();
    }
  }

  void traceTime() {
    if (vcd_) vcd_->timestamp(timePs_);
  }
  void traceChange(ir::SymbolId s) {
    if (vcd_ && d_.symbol(s).kind != ir::SymKind::Array) {
      vcd_->timestamp(timePs_);
      vcd_->change(s, store_.get(s).toString());
    }
  }

  ir::SymbolId mustFind(const std::string& name) const {
    const ir::SymbolId s = d_.findSymbol(name);
    if (s == ir::kNoSymbol) {
      throw std::invalid_argument("RtlSimulator: no symbol named '" + name + "'");
    }
    return s;
  }

  const ir::Design& d_;
  KernelConfig cfg_;
  ir::ValueStore<P> store_;
  ir::Executor<P> exec_;

  std::vector<std::vector<int>> sensitiveTo_;
  std::vector<int> mainRise_, mainPost_, mainFall_, hfRise_, hfFall_;

  std::vector<ir::SignalWrite<P>> nba_;
  std::vector<int> woken_;
  std::vector<char> wokenFlag_ = std::vector<char>(d_.processes.size(), 0);

  std::map<std::uint64_t, std::vector<ir::SignalWrite<P>>> wheel_;
  std::map<ir::SymbolId, std::uint64_t> delayOf_;

  Stimulus stimulus_;
  VcdWriter* vcd_ = nullptr;

  std::uint64_t timePs_ = 0;
  std::uint64_t cycle_ = 0;
  KernelStats stats_;
};

}  // namespace xlv::rtl
