// VCD (Value Change Dump) waveform writer.
//
// The RTL kernel emits value changes here; the resulting file opens in any
// standard waveform viewer (GTKWave etc.). The writer is deliberately
// untemplated: engines hand over value strings, so one writer serves both
// value policies.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "ir/design.h"

namespace xlv::rtl {

class VcdWriter {
 public:
  /// Opens `path` and writes the header (one wire per non-array symbol).
  VcdWriter(const std::string& path, const ir::Design& design,
            const std::string& timescale = "1ps");
  ~VcdWriter();

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  bool ok() const noexcept { return out_.good(); }

  /// Advance simulation time (ps). Idempotent for repeated equal times.
  void timestamp(std::uint64_t timePs);

  /// Record a value change; `bits` is the MSB-first {0,1,x,z} string.
  void change(ir::SymbolId sym, const std::string& bits);

  void flush() { out_.flush(); }

 private:
  std::ofstream out_;
  std::vector<std::string> idOf_;  ///< VCD short identifier per symbol ("" = untraced)
  std::vector<int> widthOf_;
  std::uint64_t lastTime_ = ~0ULL;
};

}  // namespace xlv::rtl
