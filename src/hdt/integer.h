// Signed / Unsigned: HDL-flavored fixed-width integers, the remaining two
// types of the five-type HDTLib family (paper Section 5.3: "a 4-value logic
// vector class, a 2-value bit vector class, a single logic value class, a
// signed and an unsigned integer class").
//
// These carry an explicit bit width and wrap modulo 2^width, matching
// VHDL numeric_std semantics. They are the convenient types for testbenches
// and reference models; the simulators themselves use the vector types.
#pragma once

#include <cassert>
#include <cstdint>

#include "hdt/bit_vector.h"
#include "hdt/logic_vector.h"

namespace xlv::hdt {

class Unsigned {
 public:
  Unsigned(int width, std::uint64_t v = 0) noexcept : width_(width), v_(mask(width, v)) {
    assert(width >= 1 && width <= 64);
  }

  int width() const noexcept { return width_; }
  std::uint64_t value() const noexcept { return v_; }

  Unsigned operator+(const Unsigned& o) const noexcept { return {width_, v_ + o.v_}; }
  Unsigned operator-(const Unsigned& o) const noexcept { return {width_, v_ - o.v_}; }
  Unsigned operator*(const Unsigned& o) const noexcept { return {width_, v_ * o.v_}; }
  Unsigned operator&(const Unsigned& o) const noexcept { return {width_, v_ & o.v_}; }
  Unsigned operator|(const Unsigned& o) const noexcept { return {width_, v_ | o.v_}; }
  Unsigned operator^(const Unsigned& o) const noexcept { return {width_, v_ ^ o.v_}; }
  Unsigned operator~() const noexcept { return {width_, ~v_}; }
  Unsigned operator<<(int s) const noexcept { return {width_, s >= 64 ? 0 : v_ << s}; }
  Unsigned operator>>(int s) const noexcept { return {width_, s >= 64 ? 0 : v_ >> s}; }

  bool operator==(const Unsigned& o) const noexcept { return v_ == o.v_; }
  bool operator!=(const Unsigned& o) const noexcept { return v_ != o.v_; }
  bool operator<(const Unsigned& o) const noexcept { return v_ < o.v_; }
  bool operator<=(const Unsigned& o) const noexcept { return v_ <= o.v_; }

  LogicVector toLogicVector() const { return LogicVector::fromUint(width_, v_); }
  BitVector toBitVector() const { return BitVector::fromUint(width_, v_); }

  static std::uint64_t mask(int width, std::uint64_t v) noexcept {
    return width >= 64 ? v : (v & ((1ULL << width) - 1));
  }

 private:
  int width_;
  std::uint64_t v_;
};

class Signed {
 public:
  Signed(int width, std::int64_t v = 0) noexcept : width_(width), v_(wrap(width, v)) {
    assert(width >= 1 && width <= 64);
  }

  int width() const noexcept { return width_; }
  std::int64_t value() const noexcept { return v_; }

  Signed operator+(const Signed& o) const noexcept { return {width_, v_ + o.v_}; }
  Signed operator-(const Signed& o) const noexcept { return {width_, v_ - o.v_}; }
  Signed operator*(const Signed& o) const noexcept { return {width_, v_ * o.v_}; }
  Signed operator-() const noexcept { return {width_, -v_}; }
  Signed operator>>(int s) const noexcept { return {width_, v_ >> s}; }  // arithmetic
  Signed operator<<(int s) const noexcept {
    return {width_, static_cast<std::int64_t>(static_cast<std::uint64_t>(v_) << s)};
  }

  bool operator==(const Signed& o) const noexcept { return v_ == o.v_; }
  bool operator!=(const Signed& o) const noexcept { return v_ != o.v_; }
  bool operator<(const Signed& o) const noexcept { return v_ < o.v_; }
  bool operator<=(const Signed& o) const noexcept { return v_ <= o.v_; }

  LogicVector toLogicVector() const {
    return LogicVector::fromUint(width_, Unsigned::mask(width_, static_cast<std::uint64_t>(v_)));
  }
  BitVector toBitVector() const {
    return BitVector::fromUint(width_, Unsigned::mask(width_, static_cast<std::uint64_t>(v_)));
  }

  /// Wrap a 64-bit value into the signed range of `width` bits.
  static std::int64_t wrap(int width, std::int64_t v) noexcept {
    if (width >= 64) return v;
    const std::uint64_t m = (1ULL << width) - 1;
    std::uint64_t u = static_cast<std::uint64_t>(v) & m;
    const std::uint64_t sign = 1ULL << (width - 1);
    if (u & sign) u |= ~m;
    return static_cast<std::int64_t>(u);
  }

 private:
  int width_;
  std::int64_t v_;
};

}  // namespace xlv::hdt
