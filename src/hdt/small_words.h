// Small-buffer storage for packed logic vectors.
//
// HDTLib maps HDL vectors onto statically allocated arrays of unsigned
// integers (paper Section 5.3). We reproduce that with a small-buffer
// optimized word array: vectors up to 128 bits (4-value) or 256 bits
// (2-value) live inline with no heap traffic — which covers every signal of
// the three case studies — and wider vectors fall back to the heap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace xlv::hdt {

class SmallWords {
 public:
  static constexpr int kInlineWords = 4;

  SmallWords() noexcept : n_(0) {}

  explicit SmallWords(int nwords, std::uint64_t fill = 0) : n_(nwords) {
    std::uint64_t* p = allocate();
    std::fill(p, p + n_, fill);
  }

  SmallWords(const SmallWords& o) : n_(o.n_) {
    std::uint64_t* p = allocate();
    std::memcpy(p, o.data(), sizeof(std::uint64_t) * static_cast<std::size_t>(n_));
  }

  SmallWords(SmallWords&& o) noexcept : n_(o.n_) {
    if (isInline()) {
      std::memcpy(inl_, o.inl_, sizeof(inl_));
    } else {
      heap_ = o.heap_;
      o.heap_ = nullptr;
      o.n_ = 0;
    }
  }

  SmallWords& operator=(const SmallWords& o) {
    if (this == &o) return *this;
    if (n_ != o.n_) {
      release();
      n_ = o.n_;
      allocate();
    }
    std::memcpy(data(), o.data(), sizeof(std::uint64_t) * static_cast<std::size_t>(n_));
    return *this;
  }

  SmallWords& operator=(SmallWords&& o) noexcept {
    if (this == &o) return *this;
    release();
    n_ = o.n_;
    if (isInline()) {
      std::memcpy(inl_, o.inl_, sizeof(inl_));
    } else {
      heap_ = o.heap_;
      o.heap_ = nullptr;
      o.n_ = 0;
    }
    return *this;
  }

  ~SmallWords() { release(); }

  int size() const noexcept { return n_; }
  std::uint64_t* data() noexcept { return isInline() ? inl_ : heap_; }
  const std::uint64_t* data() const noexcept { return isInline() ? inl_ : heap_; }
  std::uint64_t& operator[](int i) noexcept { return data()[i]; }
  std::uint64_t operator[](int i) const noexcept { return data()[i]; }

 private:
  bool isInline() const noexcept { return n_ <= kInlineWords; }

  std::uint64_t* allocate() {
    if (isInline()) return inl_;
    heap_ = new std::uint64_t[static_cast<std::size_t>(n_)];
    return heap_;
  }

  void release() noexcept {
    if (!isInline()) delete[] heap_;
  }

  union {
    std::uint64_t inl_[kInlineWords];
    std::uint64_t* heap_;
  };
  int n_;
};

}  // namespace xlv::hdt
