// Word-parallel 4-value logic operations.
//
// A 4-value vector is stored as two bit-planes per 64-bit word:
//   val plane: the binary value of a known bit;
//   unk plane: 1 marks an unknown bit (X when val=0, Z when val=1).
//
// The formulas below are the closed forms of the 4-value truth tables,
// operating on 64 bits at a time. HDTLib (paper Section 5.3, refs [10][11])
// derives these from Karnaugh maps of the encoded truth tables instead of
// indexing lookup tables per bit — that is exactly what these expressions are:
// minimized boolean functions of the four input planes.
#pragma once

#include <cstdint>

namespace xlv::hdt {

/// One 64-bit chunk of a 4-value vector.
struct W4 {
  std::uint64_t val;
  std::uint64_t unk;
};

/// 4-value AND. A known 0 on either side forces 0 regardless of the other
/// side; otherwise any unknown poisons the bit.
constexpr W4 and4(W4 a, W4 b) noexcept {
  const std::uint64_t known0 = (~a.val & ~a.unk) | (~b.val & ~b.unk);
  const std::uint64_t unk = (a.unk | b.unk) & ~known0;
  const std::uint64_t val = a.val & b.val & ~a.unk & ~b.unk;
  return {val, unk};
}

/// 4-value OR. A known 1 on either side forces 1.
constexpr W4 or4(W4 a, W4 b) noexcept {
  const std::uint64_t known1 = (a.val & ~a.unk) | (b.val & ~b.unk);
  const std::uint64_t unk = (a.unk | b.unk) & ~known1;
  const std::uint64_t val = ((a.val | b.val) & ~a.unk & ~b.unk) | known1;
  return {val, unk};
}

/// 4-value XOR. Known only when both inputs are known.
constexpr W4 xor4(W4 a, W4 b) noexcept {
  const std::uint64_t unk = a.unk | b.unk;
  const std::uint64_t val = (a.val ^ b.val) & ~unk;
  return {val, unk};
}

/// 4-value NOT. X and Z both invert to X.
constexpr W4 not4(W4 a) noexcept {
  const std::uint64_t val = ~a.val & ~a.unk;
  return {val, a.unk};
}

/// 4-value to 2-value abstraction: X and Z collapse to 0 (paper Section 5.3).
constexpr std::uint64_t to2(W4 a) noexcept { return a.val & ~a.unk; }

}  // namespace xlv::hdt
