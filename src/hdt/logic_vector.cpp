#include "hdt/logic_vector.h"

#include <stdexcept>

namespace xlv::hdt {

namespace {
W4 wordOf(const LogicVector& v, int w) { return {v.valWord(w), v.unkWord(w)}; }
}  // namespace

LogicVector LogicVector::ones(int width) {
  LogicVector v(width);
  for (int w = 0; w < v.numWords(); ++w) v.setWord(w, {~0ULL, 0});
  v.maskTop();
  return v;
}

LogicVector LogicVector::allX(int width) {
  LogicVector v(width);
  for (int w = 0; w < v.numWords(); ++w) v.setWord(w, {0, ~0ULL});
  v.maskTop();
  return v;
}

LogicVector LogicVector::allZ(int width) {
  LogicVector v(width);
  for (int w = 0; w < v.numWords(); ++w) v.setWord(w, {~0ULL, ~0ULL});
  v.maskTop();
  return v;
}

LogicVector LogicVector::fromUint(int width, std::uint64_t x) {
  LogicVector v(width);
  v.setWord(0, {x, 0});
  v.maskTop();
  return v;
}

LogicVector LogicVector::fromString(std::string_view s) {
  if (s.empty()) throw std::invalid_argument("LogicVector::fromString: empty literal");
  LogicVector v(static_cast<int>(s.size()));
  for (int i = 0; i < v.width(); ++i) {
    // MSB first: s[0] is bit width-1.
    v.setBit(v.width() - 1 - i, logicFromChar(s[static_cast<std::size_t>(i)]));
  }
  return v;
}

LogicVector LogicVector::fromLogic(Logic b) {
  LogicVector v(1);
  v.setBit(0, b);
  return v;
}

void LogicVector::setBit(int i, Logic b) noexcept {
  assert(i >= 0 && i < width_);
  const int w = i / 64;
  const std::uint64_t m = 1ULL << (i % 64);
  std::uint64_t val = valWord(w) & ~m;
  std::uint64_t unk = unkWord(w) & ~m;
  switch (b) {
    case Logic::L0: break;
    case Logic::L1: val |= m; break;
    case Logic::X: unk |= m; break;
    case Logic::Z: val |= m; unk |= m; break;
  }
  setWord(w, {val, unk});
}

bool LogicVector::anyUnknown() const noexcept {
  for (int w = 0; w < numWords(); ++w) {
    if (unkWord(w) != 0) return true;
  }
  return false;
}

bool LogicVector::isZero() const noexcept {
  for (int w = 0; w < numWords(); ++w) {
    if (valWord(w) != 0 || unkWord(w) != 0) return false;
  }
  return true;
}

std::uint64_t LogicVector::toUint() const noexcept { return to2(wordOf(*this, 0)); }

std::int64_t LogicVector::toInt() const noexcept {
  std::uint64_t u = toUint();
  if (width_ < 64) {
    const std::uint64_t sign = 1ULL << (width_ - 1);
    if (u & sign) u |= ~((sign << 1) - 1);
  }
  return static_cast<std::int64_t>(u);
}

bool LogicVector::identical(const LogicVector& o) const noexcept {
  if (width_ != o.width_) return false;
  for (int w = 0; w < 2 * numWords(); ++w) {
    // Access the raw interleaved storage through the plane accessors.
    if (w < numWords() ? (valWord(w) != o.valWord(w)) : (unkWord(w - numWords()) != o.unkWord(w - numWords())))
      return false;
  }
  return true;
}

std::string LogicVector::toString() const {
  std::string s(static_cast<std::size_t>(width_), '0');
  for (int i = 0; i < width_; ++i) {
    s[static_cast<std::size_t>(width_ - 1 - i)] = toChar(bit(i));
  }
  return s;
}

void LogicVector::maskTop() noexcept {
  const int last = numWords() - 1;
  const std::uint64_t m = topMask(width_);
  setWord(last, {valWord(last) & m, unkWord(last) & m});
}

// ---------------------------------------------------------------------------
// Bitwise word-parallel operations.
// ---------------------------------------------------------------------------

namespace {
template <typename F>
LogicVector zipWords(const LogicVector& a, const LogicVector& b, F f) {
  assert(a.width() == b.width());
  LogicVector r(a.width());
  for (int w = 0; w < r.numWords(); ++w) f(r, w, wordOf(a, w), wordOf(b, w));
  r.maskTop();
  return r;
}
}  // namespace

LogicVector vec_and(const LogicVector& a, const LogicVector& b) {
  return zipWords(a, b, [](LogicVector& r, int w, W4 x, W4 y) { r.setWord(w, and4(x, y)); });
}

LogicVector vec_or(const LogicVector& a, const LogicVector& b) {
  return zipWords(a, b, [](LogicVector& r, int w, W4 x, W4 y) { r.setWord(w, or4(x, y)); });
}

LogicVector vec_xor(const LogicVector& a, const LogicVector& b) {
  return zipWords(a, b, [](LogicVector& r, int w, W4 x, W4 y) { r.setWord(w, xor4(x, y)); });
}

LogicVector vec_not(const LogicVector& a) {
  LogicVector r(a.width());
  for (int w = 0; w < r.numWords(); ++w) r.setWord(w, not4(wordOf(a, w)));
  r.maskTop();
  return r;
}

// ---------------------------------------------------------------------------
// Arithmetic: pessimistic on unknowns (any X/Z input bit -> all-X result),
// otherwise computed on the value plane with carry propagation across words.
// ---------------------------------------------------------------------------

LogicVector vec_add(const LogicVector& a, const LogicVector& b) {
  assert(a.width() == b.width());
  if (a.anyUnknown() || b.anyUnknown()) return LogicVector::allX(a.width());
  LogicVector r(a.width());
  std::uint64_t carry = 0;
  for (int w = 0; w < r.numWords(); ++w) {
    const std::uint64_t x = a.valWord(w);
    const std::uint64_t y = b.valWord(w);
    const std::uint64_t s1 = x + y;
    const std::uint64_t s2 = s1 + carry;
    carry = (s1 < x ? 1u : 0u) | (s2 < s1 ? 1u : 0u);
    r.setWord(w, {s2, 0});
  }
  r.maskTop();
  return r;
}

LogicVector vec_sub(const LogicVector& a, const LogicVector& b) {
  assert(a.width() == b.width());
  if (a.anyUnknown() || b.anyUnknown()) return LogicVector::allX(a.width());
  LogicVector r(a.width());
  std::uint64_t borrow = 0;
  for (int w = 0; w < r.numWords(); ++w) {
    const std::uint64_t x = a.valWord(w);
    const std::uint64_t y = b.valWord(w);
    const std::uint64_t d1 = x - y;
    const std::uint64_t d2 = d1 - borrow;
    borrow = (x < y ? 1u : 0u) | (d1 < borrow ? 1u : 0u);
    r.setWord(w, {d2, 0});
  }
  r.maskTop();
  return r;
}

LogicVector vec_neg(const LogicVector& a) {
  return vec_sub(LogicVector::zeros(a.width()), a);
}

LogicVector vec_mul(const LogicVector& a, const LogicVector& b) {
  assert(a.width() == b.width());
  if (a.anyUnknown() || b.anyUnknown()) return LogicVector::allX(a.width());
  const int n = a.numWords();
  LogicVector r(a.width());
  // Schoolbook multiply on 64-bit limbs via 128-bit partials, truncated to
  // the operand width (HDL modular semantics).
  for (int i = 0; i < n; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; i + j < n; ++j) {
      const unsigned __int128 p =
          static_cast<unsigned __int128>(a.valWord(i)) * b.valWord(j) +
          r.valWord(i + j) + carry;
      r.setWord(i + j, {static_cast<std::uint64_t>(p), 0});
      carry = static_cast<std::uint64_t>(p >> 64);
    }
  }
  r.maskTop();
  return r;
}

LogicVector vec_div(const LogicVector& a, const LogicVector& b) {
  assert(a.width() == b.width());
  if (a.width() > 64) throw std::invalid_argument("vec_div: width > 64 unsupported");
  if (a.anyUnknown() || b.anyUnknown() || b.toUint() == 0)
    return LogicVector::allX(a.width());
  return LogicVector::fromUint(a.width(), a.toUint() / b.toUint());
}

LogicVector vec_mod(const LogicVector& a, const LogicVector& b) {
  assert(a.width() == b.width());
  if (a.width() > 64) throw std::invalid_argument("vec_mod: width > 64 unsupported");
  if (a.anyUnknown() || b.anyUnknown() || b.toUint() == 0)
    return LogicVector::allX(a.width());
  return LogicVector::fromUint(a.width(), a.toUint() % b.toUint());
}

// ---------------------------------------------------------------------------
// Shifts.
// ---------------------------------------------------------------------------

LogicVector vec_shl(const LogicVector& a, int amount) {
  if (amount <= 0) return amount == 0 ? a : LogicVector::zeros(a.width());
  if (amount >= a.width()) return LogicVector::zeros(a.width());
  LogicVector r(a.width());
  const int ws = amount / 64;
  const int bs = amount % 64;
  const int n = a.numWords();
  for (int w = n - 1; w >= 0; --w) {
    W4 x{0, 0};
    if (w - ws >= 0) {
      x.val = a.valWord(w - ws) << bs;
      x.unk = a.unkWord(w - ws) << bs;
      if (bs != 0 && w - ws - 1 >= 0) {
        x.val |= a.valWord(w - ws - 1) >> (64 - bs);
        x.unk |= a.unkWord(w - ws - 1) >> (64 - bs);
      }
    }
    r.setWord(w, x);
  }
  r.maskTop();
  return r;
}

LogicVector vec_shr(const LogicVector& a, int amount) {
  if (amount <= 0) return amount == 0 ? a : LogicVector::zeros(a.width());
  if (amount >= a.width()) return LogicVector::zeros(a.width());
  LogicVector r(a.width());
  const int ws = amount / 64;
  const int bs = amount % 64;
  const int n = a.numWords();
  for (int w = 0; w < n; ++w) {
    W4 x{0, 0};
    if (w + ws < n) {
      x.val = a.valWord(w + ws) >> bs;
      x.unk = a.unkWord(w + ws) >> bs;
      if (bs != 0 && w + ws + 1 < n) {
        x.val |= a.valWord(w + ws + 1) << (64 - bs);
        x.unk |= a.unkWord(w + ws + 1) << (64 - bs);
      }
    }
    r.setWord(w, x);
  }
  r.maskTop();
  return r;
}

LogicVector vec_ashr(const LogicVector& a, int amount) {
  if (amount <= 0) return amount == 0 ? a : LogicVector::zeros(a.width());
  const Logic sign = a.bit(a.width() - 1);
  if (amount >= a.width()) {
    LogicVector r(a.width());
    for (int i = 0; i < a.width(); ++i) r.setBit(i, sign);
    return r;
  }
  LogicVector r = vec_shr(a, amount);
  for (int i = a.width() - amount; i < a.width(); ++i) r.setBit(i, sign);
  return r;
}

// ---------------------------------------------------------------------------
// Comparisons.
// ---------------------------------------------------------------------------

namespace {
LogicVector cmpResult(bool v) { return LogicVector::fromUint(1, v ? 1 : 0); }
LogicVector cmpX() { return LogicVector::allX(1); }

/// -1 / 0 / +1 unsigned multiword compare of value planes.
int cmpU(const LogicVector& a, const LogicVector& b) {
  for (int w = a.numWords() - 1; w >= 0; --w) {
    if (a.valWord(w) != b.valWord(w)) return a.valWord(w) < b.valWord(w) ? -1 : 1;
  }
  return 0;
}

int cmpS(const LogicVector& a, const LogicVector& b) {
  const bool sa = toBool(a.bit(a.width() - 1));
  const bool sb = toBool(b.bit(b.width() - 1));
  if (sa != sb) return sa ? -1 : 1;  // negative < positive
  return cmpU(a, b);
}
}  // namespace

LogicVector vec_eq(const LogicVector& a, const LogicVector& b) {
  assert(a.width() == b.width());
  if (a.anyUnknown() || b.anyUnknown()) return cmpX();
  return cmpResult(cmpU(a, b) == 0);
}
LogicVector vec_ne(const LogicVector& a, const LogicVector& b) {
  assert(a.width() == b.width());
  if (a.anyUnknown() || b.anyUnknown()) return cmpX();
  return cmpResult(cmpU(a, b) != 0);
}
LogicVector vec_ltu(const LogicVector& a, const LogicVector& b) {
  assert(a.width() == b.width());
  if (a.anyUnknown() || b.anyUnknown()) return cmpX();
  return cmpResult(cmpU(a, b) < 0);
}
LogicVector vec_leu(const LogicVector& a, const LogicVector& b) {
  assert(a.width() == b.width());
  if (a.anyUnknown() || b.anyUnknown()) return cmpX();
  return cmpResult(cmpU(a, b) <= 0);
}
LogicVector vec_lts(const LogicVector& a, const LogicVector& b) {
  assert(a.width() == b.width());
  if (a.anyUnknown() || b.anyUnknown()) return cmpX();
  return cmpResult(cmpS(a, b) < 0);
}
LogicVector vec_les(const LogicVector& a, const LogicVector& b) {
  assert(a.width() == b.width());
  if (a.anyUnknown() || b.anyUnknown()) return cmpX();
  return cmpResult(cmpS(a, b) <= 0);
}

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

LogicVector vec_redand(const LogicVector& a) {
  if (a.anyUnknown()) return cmpX();
  for (int w = 0; w < a.numWords(); ++w) {
    const std::uint64_t expect =
        (w == a.numWords() - 1) ? LogicVector::topMask(a.width()) : ~0ULL;
    if ((a.valWord(w) & expect) != expect) return cmpResult(false);
  }
  return cmpResult(true);
}

LogicVector vec_redor(const LogicVector& a) {
  bool any1 = false;
  for (int w = 0; w < a.numWords(); ++w) {
    if (a.valWord(w) & ~a.unkWord(w)) any1 = true;
  }
  if (any1) return cmpResult(true);  // a known 1 dominates
  return a.anyUnknown() ? cmpX() : cmpResult(false);
}

LogicVector vec_redxor(const LogicVector& a) {
  if (a.anyUnknown()) return cmpX();
  int parity = 0;
  for (int w = 0; w < a.numWords(); ++w) parity ^= __builtin_parityll(a.valWord(w));
  return cmpResult(parity != 0);
}

// ---------------------------------------------------------------------------
// Structural operations.
// ---------------------------------------------------------------------------

LogicVector vec_concat(const LogicVector& a, const LogicVector& b) {
  LogicVector r(a.width() + b.width());
  for (int i = 0; i < b.width(); ++i) r.setBit(i, b.bit(i));
  for (int i = 0; i < a.width(); ++i) r.setBit(b.width() + i, a.bit(i));
  return r;
}

LogicVector vec_slice(const LogicVector& a, int hi, int lo) {
  assert(hi >= lo && lo >= 0 && hi < a.width());
  LogicVector shifted = vec_shr(a, lo);
  return vec_resize(shifted, hi - lo + 1);
}

LogicVector vec_resize(const LogicVector& a, int width) {
  if (width == a.width()) return a;
  LogicVector r(width);
  const int n = std::min(r.numWords(), a.numWords());
  for (int w = 0; w < n; ++w) r.setWord(w, {a.valWord(w), a.unkWord(w)});
  r.maskTop();
  if (width < a.width()) return r;
  return r;  // zero-extended by construction
}

LogicVector vec_sext(const LogicVector& a, int width) {
  if (width <= a.width()) return vec_resize(a, width);
  LogicVector r = vec_resize(a, width);
  const Logic sign = a.bit(a.width() - 1);
  if (sign != Logic::L0) {
    for (int i = a.width(); i < width; ++i) r.setBit(i, sign);
  }
  return r;
}

void vec_setSlice(LogicVector& dst, int hi, int lo, const LogicVector& src) {
  assert(hi >= lo && lo >= 0 && hi < dst.width());
  assert(src.width() == hi - lo + 1);
  (void)hi;
  for (int i = 0; i < src.width(); ++i) dst.setBit(lo + i, src.bit(i));
}

bool vec_isTrue(const LogicVector& a) noexcept {
  if (a.anyUnknown()) return false;  // pessimistic: unknown condition is false
  return !a.isZero();
}

LogicVector vec_to2state(const LogicVector& a) {
  LogicVector r(a.width());
  for (int w = 0; w < r.numWords(); ++w) r.setWord(w, {to2(wordOf(a, w)), 0});
  r.maskTop();
  return r;
}

}  // namespace xlv::hdt
