#include "hdt/bit_vector.h"

#include <stdexcept>

namespace xlv::hdt {

BitVector BitVector::ones(int width) {
  BitVector v(width);
  for (int w = 0; w < v.numWords(); ++w) v.setWordVal(w, ~0ULL);
  v.maskTop();
  return v;
}

BitVector BitVector::fromUint(int width, std::uint64_t x) {
  BitVector v(width);
  v.setWordVal(0, x);
  v.maskTop();
  return v;
}

BitVector BitVector::fromString(std::string_view s) {
  if (s.empty()) throw std::invalid_argument("BitVector::fromString: empty literal");
  BitVector v(static_cast<int>(s.size()));
  for (int i = 0; i < v.width(); ++i) {
    v.setBit(v.width() - 1 - i, logicFromChar(s[static_cast<std::size_t>(i)]));
  }
  return v;
}

BitVector BitVector::fromLogic(Logic b) {
  BitVector v(1);
  v.setBit(0, b);
  return v;
}

bool BitVector::isZero() const noexcept {
  for (int w = 0; w < numWords(); ++w) {
    if (words_[w] != 0) return false;
  }
  return true;
}

std::int64_t BitVector::toInt() const noexcept {
  std::uint64_t u = toUint();
  if (width_ < 64) {
    const std::uint64_t sign = 1ULL << (width_ - 1);
    if (u & sign) u |= ~((sign << 1) - 1);
  }
  return static_cast<std::int64_t>(u);
}

bool BitVector::identical(const BitVector& o) const noexcept {
  if (width_ != o.width_) return false;
  for (int w = 0; w < numWords(); ++w) {
    if (words_[w] != o.words_[w]) return false;
  }
  return true;
}

std::string BitVector::toString() const {
  std::string s(static_cast<std::size_t>(width_), '0');
  for (int i = 0; i < width_; ++i) {
    s[static_cast<std::size_t>(width_ - 1 - i)] = toChar(bit(i));
  }
  return s;
}

// ---------------------------------------------------------------------------

namespace {
template <typename F>
BitVector zipWords(const BitVector& a, const BitVector& b, F f) {
  assert(a.width() == b.width());
  BitVector r(a.width());
  for (int w = 0; w < r.numWords(); ++w) r.setWordVal(w, f(a.word(w), b.word(w)));
  r.maskTop();
  return r;
}

BitVector cmpResult(bool v) { return BitVector::fromUint(1, v ? 1 : 0); }

int cmpU(const BitVector& a, const BitVector& b) {
  for (int w = a.numWords() - 1; w >= 0; --w) {
    if (a.word(w) != b.word(w)) return a.word(w) < b.word(w) ? -1 : 1;
  }
  return 0;
}

int cmpS(const BitVector& a, const BitVector& b) {
  const bool sa = toBool(a.bit(a.width() - 1));
  const bool sb = toBool(b.bit(b.width() - 1));
  if (sa != sb) return sa ? -1 : 1;
  return cmpU(a, b);
}
}  // namespace

BitVector vec_and(const BitVector& a, const BitVector& b) {
  return zipWords(a, b, [](std::uint64_t x, std::uint64_t y) { return x & y; });
}
BitVector vec_or(const BitVector& a, const BitVector& b) {
  return zipWords(a, b, [](std::uint64_t x, std::uint64_t y) { return x | y; });
}
BitVector vec_xor(const BitVector& a, const BitVector& b) {
  return zipWords(a, b, [](std::uint64_t x, std::uint64_t y) { return x ^ y; });
}
BitVector vec_not(const BitVector& a) {
  BitVector r(a.width());
  for (int w = 0; w < r.numWords(); ++w) r.setWordVal(w, ~a.word(w));
  r.maskTop();
  return r;
}

BitVector vec_add(const BitVector& a, const BitVector& b) {
  assert(a.width() == b.width());
  BitVector r(a.width());
  std::uint64_t carry = 0;
  for (int w = 0; w < r.numWords(); ++w) {
    const std::uint64_t x = a.word(w);
    const std::uint64_t y = b.word(w);
    const std::uint64_t s1 = x + y;
    const std::uint64_t s2 = s1 + carry;
    carry = (s1 < x ? 1u : 0u) | (s2 < s1 ? 1u : 0u);
    r.setWordVal(w, s2);
  }
  r.maskTop();
  return r;
}

BitVector vec_sub(const BitVector& a, const BitVector& b) {
  assert(a.width() == b.width());
  BitVector r(a.width());
  std::uint64_t borrow = 0;
  for (int w = 0; w < r.numWords(); ++w) {
    const std::uint64_t x = a.word(w);
    const std::uint64_t y = b.word(w);
    const std::uint64_t d1 = x - y;
    const std::uint64_t d2 = d1 - borrow;
    borrow = (x < y ? 1u : 0u) | (d1 < borrow ? 1u : 0u);
    r.setWordVal(w, d2);
  }
  r.maskTop();
  return r;
}

BitVector vec_neg(const BitVector& a) { return vec_sub(BitVector::zeros(a.width()), a); }

BitVector vec_mul(const BitVector& a, const BitVector& b) {
  assert(a.width() == b.width());
  const int n = a.numWords();
  BitVector r(a.width());
  for (int i = 0; i < n; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; i + j < n; ++j) {
      const unsigned __int128 p =
          static_cast<unsigned __int128>(a.word(i)) * b.word(j) + r.word(i + j) + carry;
      r.setWordVal(i + j, static_cast<std::uint64_t>(p));
      carry = static_cast<std::uint64_t>(p >> 64);
    }
  }
  r.maskTop();
  return r;
}

BitVector vec_div(const BitVector& a, const BitVector& b) {
  assert(a.width() == b.width());
  if (a.width() > 64) throw std::invalid_argument("vec_div: width > 64 unsupported");
  // Division by zero yields all-zero in the 2-value library (the scrubbed
  // image of the 4-value all-X result).
  if (b.toUint() == 0) return BitVector::zeros(a.width());
  return BitVector::fromUint(a.width(), a.toUint() / b.toUint());
}

BitVector vec_mod(const BitVector& a, const BitVector& b) {
  assert(a.width() == b.width());
  if (a.width() > 64) throw std::invalid_argument("vec_mod: width > 64 unsupported");
  if (b.toUint() == 0) return BitVector::zeros(a.width());
  return BitVector::fromUint(a.width(), a.toUint() % b.toUint());
}

BitVector vec_shl(const BitVector& a, int amount) {
  if (amount <= 0) return amount == 0 ? a : BitVector::zeros(a.width());
  if (amount >= a.width()) return BitVector::zeros(a.width());
  BitVector r(a.width());
  const int ws = amount / 64;
  const int bs = amount % 64;
  const int n = a.numWords();
  for (int w = n - 1; w >= 0; --w) {
    std::uint64_t x = 0;
    if (w - ws >= 0) {
      x = a.word(w - ws) << bs;
      if (bs != 0 && w - ws - 1 >= 0) x |= a.word(w - ws - 1) >> (64 - bs);
    }
    r.setWordVal(w, x);
  }
  r.maskTop();
  return r;
}

BitVector vec_shr(const BitVector& a, int amount) {
  if (amount <= 0) return amount == 0 ? a : BitVector::zeros(a.width());
  if (amount >= a.width()) return BitVector::zeros(a.width());
  BitVector r(a.width());
  const int ws = amount / 64;
  const int bs = amount % 64;
  const int n = a.numWords();
  for (int w = 0; w < n; ++w) {
    std::uint64_t x = 0;
    if (w + ws < n) {
      x = a.word(w + ws) >> bs;
      if (bs != 0 && w + ws + 1 < n) x |= a.word(w + ws + 1) << (64 - bs);
    }
    r.setWordVal(w, x);
  }
  r.maskTop();
  return r;
}

BitVector vec_ashr(const BitVector& a, int amount) {
  if (amount <= 0) return amount == 0 ? a : BitVector::zeros(a.width());
  const Logic sign = a.bit(a.width() - 1);
  if (amount >= a.width()) {
    return toBool(sign) ? BitVector::ones(a.width()) : BitVector::zeros(a.width());
  }
  BitVector r = vec_shr(a, amount);
  if (toBool(sign)) {
    for (int i = a.width() - amount; i < a.width(); ++i) r.setBit(i, Logic::L1);
  }
  return r;
}

BitVector vec_eq(const BitVector& a, const BitVector& b) {
  assert(a.width() == b.width());
  return cmpResult(cmpU(a, b) == 0);
}
BitVector vec_ne(const BitVector& a, const BitVector& b) {
  assert(a.width() == b.width());
  return cmpResult(cmpU(a, b) != 0);
}
BitVector vec_ltu(const BitVector& a, const BitVector& b) {
  assert(a.width() == b.width());
  return cmpResult(cmpU(a, b) < 0);
}
BitVector vec_leu(const BitVector& a, const BitVector& b) {
  assert(a.width() == b.width());
  return cmpResult(cmpU(a, b) <= 0);
}
BitVector vec_lts(const BitVector& a, const BitVector& b) {
  assert(a.width() == b.width());
  return cmpResult(cmpS(a, b) < 0);
}
BitVector vec_les(const BitVector& a, const BitVector& b) {
  assert(a.width() == b.width());
  return cmpResult(cmpS(a, b) <= 0);
}

BitVector vec_redand(const BitVector& a) {
  for (int w = 0; w < a.numWords(); ++w) {
    const std::uint64_t expect =
        (w == a.numWords() - 1) ? BitVector::topMask(a.width()) : ~0ULL;
    if ((a.word(w) & expect) != expect) return cmpResult(false);
  }
  return cmpResult(true);
}

BitVector vec_redor(const BitVector& a) { return cmpResult(!a.isZero()); }

BitVector vec_redxor(const BitVector& a) {
  int parity = 0;
  for (int w = 0; w < a.numWords(); ++w) parity ^= __builtin_parityll(a.word(w));
  return cmpResult(parity != 0);
}

BitVector vec_concat(const BitVector& a, const BitVector& b) {
  BitVector r(a.width() + b.width());
  for (int i = 0; i < b.width(); ++i) r.setBit(i, b.bit(i));
  for (int i = 0; i < a.width(); ++i) r.setBit(b.width() + i, a.bit(i));
  return r;
}

BitVector vec_slice(const BitVector& a, int hi, int lo) {
  assert(hi >= lo && lo >= 0 && hi < a.width());
  BitVector shifted = vec_shr(a, lo);
  return vec_resize(shifted, hi - lo + 1);
}

BitVector vec_resize(const BitVector& a, int width) {
  if (width == a.width()) return a;
  BitVector r(width);
  const int n = std::min(r.numWords(), a.numWords());
  for (int w = 0; w < n; ++w) r.setWordVal(w, a.word(w));
  r.maskTop();
  return r;
}

BitVector vec_sext(const BitVector& a, int width) {
  if (width <= a.width()) return vec_resize(a, width);
  BitVector r = vec_resize(a, width);
  if (toBool(a.bit(a.width() - 1))) {
    for (int i = a.width(); i < width; ++i) r.setBit(i, Logic::L1);
  }
  return r;
}

void vec_setSlice(BitVector& dst, int hi, int lo, const BitVector& src) {
  assert(hi >= lo && lo >= 0 && hi < dst.width());
  assert(src.width() == hi - lo + 1);
  (void)hi;
  for (int i = 0; i < src.width(); ++i) dst.setBit(lo + i, src.bit(i));
}

bool vec_isTrue(const BitVector& a) noexcept { return !a.isZero(); }

BitVector vec_to2state(const BitVector& a) { return a; }

}  // namespace xlv::hdt
