// Value-type policies for the IR evaluator and the simulation engines.
//
// The whole execution stack (evaluator, RTL kernel, TLM scheduler) is
// templated on one of these policies. FourState is the faithful HDL
// representation produced by a standard RTL-to-TLM abstraction; TwoState is
// the HDTLib-optimized representation (paper Section 5.3) measured by
// Table 4.
#pragma once

#include "hdt/bit_vector.h"
#include "hdt/logic_vector.h"

namespace xlv::hdt {

struct FourState {
  using Vec = LogicVector;
  static constexpr const char* name() noexcept { return "4-state"; }
};

struct TwoState {
  using Vec = BitVector;
  static constexpr const char* name() noexcept { return "2-state"; }
};

/// Cross-policy conversions, used when comparing traces between policies.
inline BitVector toTwoState(const LogicVector& v) {
  BitVector r(v.width());
  for (int w = 0; w < v.numWords(); ++w) r.setWordVal(w, v.valWord(w) & ~v.unkWord(w));
  r.maskTop();
  return r;
}

inline LogicVector toFourState(const BitVector& v) {
  LogicVector r(v.width());
  for (int w = 0; w < v.numWords(); ++w) r.setWord(w, {v.word(w), 0});
  r.maskTop();
  return r;
}

}  // namespace xlv::hdt
