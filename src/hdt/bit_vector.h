// BitVector: the 2-value packed vector type of the HDTLib-style data type
// library (paper Section 5.3).
//
// This is the "optimized TLM" representation: a single value plane, half the
// memory traffic and none of the unknown-propagation logic of LogicVector.
// It exposes the exact same operation surface (same free-function names) so
// the IR evaluator can be instantiated on either type — that switch is what
// Table 4 of the paper measures.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>

#include "hdt/logic.h"
#include "hdt/small_words.h"

namespace xlv::hdt {

class BitVector {
 public:
  BitVector() : BitVector(1) {}

  explicit BitVector(int width) : width_(width), words_(nwords(width), 0) {
    assert(width >= 1);
  }

  static BitVector zeros(int width) { return BitVector(width); }
  static BitVector ones(int width);
  /// 2-value library has no X: provided for API parity, X/Z collapse to 0.
  static BitVector allX(int width) { return BitVector(width); }
  static BitVector allZ(int width) { return BitVector(width); }
  static BitVector fromUint(int width, std::uint64_t v);
  static BitVector fromString(std::string_view s);
  static BitVector fromLogic(Logic v);

  int width() const noexcept { return width_; }

  Logic bit(int i) const noexcept {
    assert(i >= 0 && i < width_);
    return fromBool((word(i / 64) >> (i % 64)) & 1);
  }

  void setBit(int i, Logic b) noexcept {
    assert(i >= 0 && i < width_);
    const std::uint64_t m = 1ULL << (i % 64);
    if (toBool(b)) {
      words_[i / 64] |= m;
    } else {
      words_[i / 64] &= ~m;
    }
  }

  bool anyUnknown() const noexcept { return false; }
  bool isZero() const noexcept;

  std::uint64_t toUint() const noexcept { return words_[0]; }
  std::int64_t toInt() const noexcept;

  bool identical(const BitVector& o) const noexcept;
  bool operator==(const BitVector& o) const noexcept { return identical(o); }
  bool operator!=(const BitVector& o) const noexcept { return !identical(o); }

  std::string toString() const;

  int numWords() const noexcept { return words_.size(); }
  std::uint64_t word(int w) const noexcept { return words_[w]; }
  std::uint64_t valWord(int w) const noexcept { return words_[w]; }
  std::uint64_t unkWord(int) const noexcept { return 0; }
  void setWordVal(int w, std::uint64_t v) noexcept { words_[w] = v; }

  void maskTop() noexcept {
    words_[numWords() - 1] &= topMask(width_);
  }

  static int nwords(int width) noexcept { return (width + 63) / 64; }
  static std::uint64_t topMask(int width) noexcept {
    const int rem = width % 64;
    return rem == 0 ? ~0ULL : ((1ULL << rem) - 1);
  }

 private:
  int width_;
  SmallWords words_;
};

// --- operations, mirroring logic_vector.h -----------------------------------

BitVector vec_and(const BitVector& a, const BitVector& b);
BitVector vec_or(const BitVector& a, const BitVector& b);
BitVector vec_xor(const BitVector& a, const BitVector& b);
BitVector vec_not(const BitVector& a);

BitVector vec_add(const BitVector& a, const BitVector& b);
BitVector vec_sub(const BitVector& a, const BitVector& b);
BitVector vec_mul(const BitVector& a, const BitVector& b);
BitVector vec_div(const BitVector& a, const BitVector& b);
BitVector vec_mod(const BitVector& a, const BitVector& b);
BitVector vec_neg(const BitVector& a);

BitVector vec_shl(const BitVector& a, int amount);
BitVector vec_shr(const BitVector& a, int amount);
BitVector vec_ashr(const BitVector& a, int amount);

BitVector vec_eq(const BitVector& a, const BitVector& b);
BitVector vec_ne(const BitVector& a, const BitVector& b);
BitVector vec_ltu(const BitVector& a, const BitVector& b);
BitVector vec_leu(const BitVector& a, const BitVector& b);
BitVector vec_lts(const BitVector& a, const BitVector& b);
BitVector vec_les(const BitVector& a, const BitVector& b);

BitVector vec_redand(const BitVector& a);
BitVector vec_redor(const BitVector& a);
BitVector vec_redxor(const BitVector& a);

BitVector vec_concat(const BitVector& a, const BitVector& b);
BitVector vec_slice(const BitVector& a, int hi, int lo);
BitVector vec_resize(const BitVector& a, int width);
BitVector vec_sext(const BitVector& a, int width);
void vec_setSlice(BitVector& dst, int hi, int lo, const BitVector& src);

bool vec_isTrue(const BitVector& a) noexcept;
BitVector vec_to2state(const BitVector& a);

}  // namespace xlv::hdt
