// LogicVector: the 4-value (0/1/X/Z) packed vector type of the HDTLib-style
// data type library (paper Section 5.3).
//
// Representation: two bit-planes (value + unknown) packed into 64-bit words,
// operated on word-at-a-time with the minimized boolean forms in word_ops.h.
// Invariant: bits above `width` are zero in both planes, so whole-vector
// comparison is a plain word compare.
//
// Semantics follow Verilog 4-state rules: bitwise operators propagate
// unknowns per truth table; arithmetic and relational operators are
// pessimistic — any unknown input bit makes the whole result X.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>

#include "hdt/logic.h"
#include "hdt/small_words.h"
#include "hdt/word_ops.h"

namespace xlv::hdt {

class LogicVector {
 public:
  /// Default: 1-bit zero. HDL simulators start signals at X; we deliberately
  /// default to 0 instead so that the 4-value and 2-value instantiations of a
  /// design produce identical traces (see DESIGN.md, invariant 2). All-X
  /// vectors are available explicitly via allX().
  LogicVector() : LogicVector(1) {}

  explicit LogicVector(int width) : width_(width), words_(2 * nwords(width), 0) {
    assert(width >= 1);
  }

  static LogicVector zeros(int width) { return LogicVector(width); }
  static LogicVector ones(int width);
  static LogicVector allX(int width);
  static LogicVector allZ(int width);
  static LogicVector fromUint(int width, std::uint64_t v);
  /// MSB-first string over {0,1,x,X,z,Z}; width = string length.
  static LogicVector fromString(std::string_view s);
  static LogicVector fromLogic(Logic v);

  int width() const noexcept { return width_; }

  Logic bit(int i) const noexcept {
    assert(i >= 0 && i < width_);
    const bool v = (valWord(i / 64) >> (i % 64)) & 1;
    const bool u = (unkWord(i / 64) >> (i % 64)) & 1;
    if (!u) return v ? Logic::L1 : Logic::L0;
    return v ? Logic::Z : Logic::X;
  }

  void setBit(int i, Logic b) noexcept;

  bool anyUnknown() const noexcept;
  bool isZero() const noexcept;  // all bits known 0

  /// Lower 64 bits of the value plane with X/Z read as 0 (the documented
  /// 2-value abstraction). Bits above 64 are ignored.
  std::uint64_t toUint() const noexcept;

  std::int64_t toInt() const noexcept;  // sign-extended from width

  /// Exact 4-value equality (same width, same value incl. X/Z positions).
  bool identical(const LogicVector& o) const noexcept;
  bool operator==(const LogicVector& o) const noexcept { return identical(o); }
  bool operator!=(const LogicVector& o) const noexcept { return !identical(o); }

  std::string toString() const;

  // --- plane access for word-parallel operations ------------------------
  int numWords() const noexcept { return words_.size() / 2; }
  std::uint64_t valWord(int w) const noexcept { return words_[w]; }
  std::uint64_t unkWord(int w) const noexcept { return words_[numWords() + w]; }
  void setWord(int w, W4 x) noexcept {
    words_[w] = x.val;
    words_[numWords() + w] = x.unk;
  }

  /// Re-establish the canonical form (clear bits above width in both planes).
  void maskTop() noexcept;

  static int nwords(int width) noexcept { return (width + 63) / 64; }
  static std::uint64_t topMask(int width) noexcept {
    const int rem = width % 64;
    return rem == 0 ? ~0ULL : ((1ULL << rem) - 1);
  }

 private:
  int width_;
  SmallWords words_;  // [0,n): value plane, [n,2n): unknown plane
};

// --- operations (free functions; the IR evaluator resolves via overload) ---

/// Bitwise ops require equal widths (the evaluator resizes operands first).
LogicVector vec_and(const LogicVector& a, const LogicVector& b);
LogicVector vec_or(const LogicVector& a, const LogicVector& b);
LogicVector vec_xor(const LogicVector& a, const LogicVector& b);
LogicVector vec_not(const LogicVector& a);

/// Modular arithmetic at the common width; any unknown input -> all-X result.
LogicVector vec_add(const LogicVector& a, const LogicVector& b);
LogicVector vec_sub(const LogicVector& a, const LogicVector& b);
LogicVector vec_mul(const LogicVector& a, const LogicVector& b);
/// Division/modulo support widths up to 64 bits; division by zero -> all-X.
LogicVector vec_div(const LogicVector& a, const LogicVector& b);
LogicVector vec_mod(const LogicVector& a, const LogicVector& b);
LogicVector vec_neg(const LogicVector& a);

/// Shift amount given as plain integer (evaluator extracts it; unknown shift
/// amounts yield all-X there).
LogicVector vec_shl(const LogicVector& a, int amount);
LogicVector vec_shr(const LogicVector& a, int amount);
LogicVector vec_ashr(const LogicVector& a, int amount);

/// Comparisons produce a 1-bit vector; X if any input bit is unknown.
LogicVector vec_eq(const LogicVector& a, const LogicVector& b);
LogicVector vec_ne(const LogicVector& a, const LogicVector& b);
LogicVector vec_ltu(const LogicVector& a, const LogicVector& b);
LogicVector vec_leu(const LogicVector& a, const LogicVector& b);
LogicVector vec_lts(const LogicVector& a, const LogicVector& b);
LogicVector vec_les(const LogicVector& a, const LogicVector& b);

LogicVector vec_redand(const LogicVector& a);
LogicVector vec_redor(const LogicVector& a);
LogicVector vec_redxor(const LogicVector& a);

/// {a, b}: a becomes the high part.
LogicVector vec_concat(const LogicVector& a, const LogicVector& b);
LogicVector vec_slice(const LogicVector& a, int hi, int lo);
/// Zero-extend or truncate to `width`.
LogicVector vec_resize(const LogicVector& a, int width);
/// Sign-extend (from a's MSB) or truncate to `width`.
LogicVector vec_sext(const LogicVector& a, int width);
/// In-place range write: dst[hi:lo] = src (src width must be hi-lo+1).
void vec_setSlice(LogicVector& dst, int hi, int lo, const LogicVector& src);

/// Condition truthiness: true iff fully known and != 0. Unknown conditions
/// are pessimistically false (documented deviation used by the interpreter).
bool vec_isTrue(const LogicVector& a) noexcept;

/// 4-value -> 2-value scrub: X/Z become 0 (HDTLib optimization, Section 5.3).
LogicVector vec_to2state(const LogicVector& a);

}  // namespace xlv::hdt
