// Scalar 4-value logic (0, 1, X, Z), the single-value type of the HDTLib-style
// data type library (paper Section 5.3).
//
// The resolution tables below are the IEEE 1164 / Verilog 4-state semantics
// restricted to {0,1,X,Z}: X means "unknown", Z means "high impedance". Any
// operator consuming a Z treats it as unknown (X) — the standard behaviour of
// logic gates reading a floating net.
#pragma once

#include <cstdint>

namespace xlv::hdt {

enum class Logic : std::uint8_t { L0 = 0, L1 = 1, X = 2, Z = 3 };

constexpr bool isKnown(Logic v) noexcept { return v == Logic::L0 || v == Logic::L1; }

/// Known value as bool; X/Z map to false (the documented abstraction of the
/// 2-value conversion, paper Section 5.3).
constexpr bool toBool(Logic v) noexcept { return v == Logic::L1; }

constexpr Logic fromBool(bool b) noexcept { return b ? Logic::L1 : Logic::L0; }

constexpr char toChar(Logic v) noexcept {
  switch (v) {
    case Logic::L0: return '0';
    case Logic::L1: return '1';
    case Logic::X: return 'X';
    case Logic::Z: return 'Z';
  }
  return '?';
}

constexpr Logic logicFromChar(char c) noexcept {
  switch (c) {
    case '0': return Logic::L0;
    case '1': return Logic::L1;
    case 'z':
    case 'Z': return Logic::Z;
    default: return Logic::X;
  }
}

namespace detail {
// Truth tables indexed [a][b]. Kept tiny and constexpr so the scalar type has
// zero runtime setup; the vector types use the word-parallel forms in
// word_ops.h instead.
inline constexpr Logic kAnd[4][4] = {
    /*0*/ {Logic::L0, Logic::L0, Logic::L0, Logic::L0},
    /*1*/ {Logic::L0, Logic::L1, Logic::X, Logic::X},
    /*X*/ {Logic::L0, Logic::X, Logic::X, Logic::X},
    /*Z*/ {Logic::L0, Logic::X, Logic::X, Logic::X},
};
inline constexpr Logic kOr[4][4] = {
    /*0*/ {Logic::L0, Logic::L1, Logic::X, Logic::X},
    /*1*/ {Logic::L1, Logic::L1, Logic::L1, Logic::L1},
    /*X*/ {Logic::X, Logic::L1, Logic::X, Logic::X},
    /*Z*/ {Logic::X, Logic::L1, Logic::X, Logic::X},
};
inline constexpr Logic kXor[4][4] = {
    /*0*/ {Logic::L0, Logic::L1, Logic::X, Logic::X},
    /*1*/ {Logic::L1, Logic::L0, Logic::X, Logic::X},
    /*X*/ {Logic::X, Logic::X, Logic::X, Logic::X},
    /*Z*/ {Logic::X, Logic::X, Logic::X, Logic::X},
};
inline constexpr Logic kNot[4] = {Logic::L1, Logic::L0, Logic::X, Logic::X};
}  // namespace detail

constexpr Logic operator&(Logic a, Logic b) noexcept {
  return detail::kAnd[static_cast<int>(a)][static_cast<int>(b)];
}
constexpr Logic operator|(Logic a, Logic b) noexcept {
  return detail::kOr[static_cast<int>(a)][static_cast<int>(b)];
}
constexpr Logic operator^(Logic a, Logic b) noexcept {
  return detail::kXor[static_cast<int>(a)][static_cast<int>(b)];
}
constexpr Logic operator~(Logic a) noexcept { return detail::kNot[static_cast<int>(a)]; }

}  // namespace xlv::hdt
