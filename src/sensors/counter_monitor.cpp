#include "sensors/counter_monitor.h"

#include <map>
#include <tuple>

namespace xlv::sensors {

using namespace xlv::ir;

std::shared_ptr<const Module> buildCounterMonitor(const CounterConfig& cfg) {
  static std::map<std::tuple<int, int, int>, std::shared_ptr<const Module>> cache;
  const auto key = std::make_tuple(cfg.measWidth, cfg.threshold, cfg.cpsWidth);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  const int w = cfg.measWidth;
  ModuleBuilder mb("counter_mon_w" + std::to_string(w) + "_t" + std::to_string(cfg.threshold) +
                   "_c" + std::to_string(cfg.cpsWidth));
  auto clk = mb.clock(CounterPorts::clk);
  auto hclk = mb.clock(CounterPorts::hclk, ClockRole::HighFreq);
  auto cps = mb.in(CounterPorts::cps, cfg.cpsWidth);
  auto measVal = mb.out(CounterPorts::measVal, w);
  auto outOk = mb.out(CounterPorts::outOk, 1);

  // Main-clock domain: snapshot the on-time value of the monitored path
  // signal at the edge and hand a token to the HF domain to (re)arm the
  // measurement. Single driver per signal throughout — the cross-domain
  // handshake is a classic toggle token.
  auto cpsRef = mb.signal("cps_ref", cfg.cpsWidth);
  auto armTok = mb.signal("arm_tok", 1);
  mb.onPostEdge("arm", clk, [&](ProcBuilder& p) {
    p.assign(cpsRef, cps);
    p.assign(armTok, ~Ex(armTok));
  });

  // HF-clock domain: the counter enumerates HF periods inside the
  // observability window (clock high, edge to falling edge); the capture
  // register records the count of the last CPS transition — the R1/R2
  // rising/falling capture pair of the paper collapses to one register
  // because the last transition wins either way.
  auto cnt = mb.signal("cnt", w);
  auto meas = mb.signal("meas", w);
  auto seenTok = mb.signal("seen_tok", 1);
  auto cpsSeen = mb.signal("cps_seen", cfg.cpsWidth);
  mb.onRising("count", hclk, [&](ProcBuilder& p) {
    p.if_(
        Ex(seenTok) != Ex(armTok),
        [&] {
          // First HF tick of a new window.
          p.assign(seenTok, armTok);
          p.assign(cnt, lit(w, 1));
          p.if_(
              Ex(cps) != Ex(cpsRef),
              [&] {
                p.assign(meas, lit(w, 1));
                p.assign(cpsSeen, cps);
              },
              [&] {
                p.assign(meas, lit(w, 0));
                p.assign(cpsSeen, cpsRef);
              });
        },
        [&] {
          // Inside the window while the main clock is high.
          p.if_(Ex(clk) == 1u, [&] {
            p.assign(cnt, Ex(cnt) + 1u);
            p.if_(Ex(cps) != Ex(cpsSeen), [&] {
              p.assign(meas, Ex(cnt) + 1u);
              p.assign(cpsSeen, cps);
            });
          });
        });
  });

  // LUT_OUT: design-time threshold (paper: reference values in a monitor
  // look-up table; Section 8.5 uses 8 HF periods).
  auto lutOut = mb.signalInit("lut_out", w, static_cast<std::uint64_t>(cfg.threshold));

  // Window closes at the falling edge: publish measurement and comparison.
  mb.onFalling("output", clk, [&](ProcBuilder& p) {
    p.assign(measVal, meas);
    p.assign(outOk, sel(Ex(meas) <= Ex(lutOut), lit(1, 1), lit(1, 0)));
  });

  auto m = mb.finish();
  cache[key] = m;
  return m;
}

double counterAreaGates(const CounterConfig& cfg) {
  const double w = cfg.measWidth;
  // counter (w FFs + increment) + capture/reference registers + transition
  // comparator (per monitored bit) + threshold compare + control.
  return 6.2 * (3 * w + 3) + 7.0 * w + 3.0 * w + 12.0 + 10.0 * cfg.cpsWidth;
}

}  // namespace xlv::sensors
