#include "sensors/razor.h"

#include <map>

namespace xlv::sensors {

using namespace xlv::ir;

std::shared_ptr<const Module> buildRazor(int width) {
  static std::map<int, std::shared_ptr<const Module>> cache;
  auto it = cache.find(width);
  if (it != cache.end()) return it->second;

  ModuleBuilder mb("razor_w" + std::to_string(width));
  auto clk = mb.clock(RazorPorts::clk);
  auto d = mb.in(RazorPorts::d, width);
  auto r = mb.in(RazorPorts::recover, 1);
  auto q = mb.out(RazorPorts::q, width);
  auto e = mb.out(RazorPorts::error, 1);
  auto mainFf = mb.signal("main_ff", width);
  auto shadow = mb.signal("shadow", width);

  // Main flip-flop: samples D at the edge (post-edge phase = it sees on-time
  // commits, misses delayed ones). The recovery mux substitutes the shadow
  // value when an error was flagged and recovery is enabled.
  mb.onPostEdge("main_sample", clk, [&](ProcBuilder& p) {
    p.assign(mainFf, d);
    p.if_((Ex(r) & Ex(e)) == 1u,
          [&] { p.assign(q, shadow); },
          [&] { p.assign(q, d); });
  });

  // Shadow latch on the delayed (half-period) clock: samples at the falling
  // edge and compares with what the main FF captured.
  mb.onFalling("shadow_sample", clk, [&](ProcBuilder& p) {
    p.assign(shadow, d);
    p.assign(e, Ex(mainFf) != Ex(d));
  });

  auto m = mb.finish();
  cache[width] = m;
  return m;
}

double razorAreaGates(int width) {
  // Per bit: shadow latch (~4 NAND2), XOR compare (~3), recovery mux (~3),
  // plus the main FF which replaces the original one (net ~6.2).
  return width * (6.2 + 4.0 + 3.0 + 3.0) + 2.0;  // +2 for the E fan-in gate
}

}  // namespace xlv::sensors
