// Modified Razor flip-flop (paper Section 4.1.1).
//
// The Razor monitors one register of the augmented IP: its main sampling
// element captures the monitored value right at the clock edge (post-edge
// sampling phase), while the shadow latch — clocked by the half-period
// delayed clock — captures it at the falling edge. A value that commits on
// time is seen identically by both; a value displaced into the detection
// window (0, T/2] after the edge is missed by the main element but caught by
// the shadow, raising the error flag E. With the recovery input R asserted,
// the corrected (shadow) value is presented on Q one cycle later, modeling
// the pipeline-replay recovery of the original Razor design.
//
// The sensor is a plain IR module: entirely digital, synthesizable in shape,
// and indistinguishable from IP logic to the abstraction tool — the paradigm
// constraints of Section 4.1.
#pragma once

#include <memory>
#include <string>

#include "ir/builder.h"

namespace xlv::sensors {

struct RazorPorts {
  /// Canonical port names of the generated module.
  static constexpr const char* clk = "clk";
  static constexpr const char* d = "d";
  static constexpr const char* recover = "r";
  static constexpr const char* q = "q";
  static constexpr const char* error = "e";
};

/// Build a Razor module monitoring a `width`-bit register.
/// The module is cached per width (modules are immutable after build).
std::shared_ptr<const ir::Module> buildRazor(int width);

/// Area model: one extra FF-equivalent per monitored bit plus the XOR
/// comparator and recovery mux (paper: "the area overhead of a modified
/// Razor FF is quite modest, as it is about one standard FF").
double razorAreaGates(int width);

}  // namespace xlv::sensors
