// Counter-based delay monitor (paper Section 4.1.2).
//
// Unlike the Razor's fail/no-fail flag, this sensor *measures* the delay of
// the monitored path in high-frequency-clock periods. A counter clocked by
// HF_CLK runs during the observability window (which opens at the main clock
// edge and closes at the falling edge); transition-capture registers record
// the counter value at the last transition of the monitored path signal
// (CPS). The captured value is presented on MEAS_VAL and compared against a
// look-up-table threshold to produce OUT_OK.
//
//   * resolution: one HF_CLK period (paper: "the maximum resolution is the
//     HF_CLK period");
//   * MEAS_VAL == 0 means no transition landed inside the window (on-time
//     behaviour);
//   * OUT_OK == 1 while MEAS_VAL <= threshold (delays below threshold are
//     tolerable; paper Section 8.5 sets the threshold to 8 HF periods).
//
// Divergence from the paper noted in DESIGN.md: the paper's block shares one
// counter across paths through a 3-cycle scan FSM; we instantiate one
// monitor per endpoint, so measurement is continuous with single-cycle
// latency. The measurement semantics (resolution, window, threshold) are
// unchanged.
#pragma once

#include <memory>
#include <string>

#include "ir/builder.h"

namespace xlv::sensors {

struct CounterPorts {
  static constexpr const char* clk = "clk";
  static constexpr const char* hclk = "hclk";
  static constexpr const char* cps = "cps";          ///< current path signal (1 bit)
  static constexpr const char* measVal = "meas_val";  ///< measured delay (HF periods)
  static constexpr const char* outOk = "out_ok";      ///< 1 = constraint met
};

struct CounterConfig {
  int measWidth = 8;   ///< counter / MEAS_VAL width
  int threshold = 8;   ///< LUT_OUT: max tolerable delay in HF periods
  /// Width of the monitored path signal input. 1 reproduces the paper's
  /// literal single-bit CPS; insertion defaults to the full endpoint
  /// register width so that every value change is observable (a 1-bit
  /// condensation cannot distinguish all transitions).
  int cpsWidth = 1;
};

/// Build a Counter-based monitor module. Cached per configuration.
std::shared_ptr<const ir::Module> buildCounterMonitor(const CounterConfig& cfg = {});

/// Area model calibrated to the paper's example: ~352 NAND2 gates for a
/// 10-path, 8-bit shared monitor => ~35 gates/path plus the counter core.
double counterAreaGates(const CounterConfig& cfg = {});

}  // namespace xlv::sensors
