#include "campaign/executor.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "util/log.h"

namespace xlv::campaign {

namespace {

int hardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::mutex g_envWarnMutex;
std::set<std::string> g_envValuesWarned;

/// Warn once per distinct malformed value: campaigns construct one executor
/// per analysis, so an unconditional warning would repeat per item.
void warnBadEnvOnce(const std::string& value, const char* why) {
  std::lock_guard<std::mutex> lock(g_envWarnMutex);
  if (g_envValuesWarned.insert(value).second) {
    XLV_WARN("campaign") << "ignoring XLV_THREADS='" << value << "': " << why
                         << "; using auto thread count";
  }
}

int envThreads() {
  const char* s = std::getenv("XLV_THREADS");
  if (s == nullptr || *s == '\0') return 0;
  // Strict parse: "4abc" must not silently run on 4 threads — a malformed
  // override is ignored loudly so a typo'd CI variable degrades to auto
  // instead of masking itself.
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') {
    warnBadEnvOnce(s, "not an integer");
    return 0;
  }
  if (errno == ERANGE || v < 1 || v > 4096) {
    warnBadEnvOnce(s, "outside [1, 4096]");
    return 0;
  }
  return static_cast<int>(v);
}

}  // namespace

void resetThreadEnvWarningsForTest() {
  std::lock_guard<std::mutex> lock(g_envWarnMutex);
  g_envValuesWarned.clear();
}

int resolveThreadCount(int requested) {
  static std::once_flag logged;
  const int env = envThreads();
  const int hw = hardwareThreads();
  // Only 0 means auto; a negative count (stray sentinel, arithmetic bug)
  // degrades to serial rather than silently fanning out.
  const int resolved = requested > 0 ? requested
                       : requested < 0 ? 1
                                       : (env > 0 ? env : hw);
  std::call_once(logged, [&] {
    XLV_INFO("campaign") << "thread pool default: " << (env > 0 ? env : hw)
                         << (env > 0 ? " (XLV_THREADS override)" : " (hardware_concurrency)")
                         << ", hardware=" << hw;
  });
  return std::max(1, resolved);
}

Executor::Executor(ExecutorConfig cfg)
    : threads_(resolveThreadCount(cfg.threads)), chunkSize_(std::max(0, cfg.chunkSize)) {}

void Executor::run(std::size_t n, const std::function<void(std::size_t)>& task) const {
  if (n == 0) return;

  const int workers = effectiveThreads(n);
  if (workers <= 1) {
    // Serial path: index order, caller's thread, no pool machinery.
    for (std::size_t i = 0; i < n; ++i) task(i);
    return;
  }

  std::size_t chunk = static_cast<std::size_t>(chunkSize_);
  if (chunk == 0) {
    chunk = std::clamp<std::size_t>(n / (static_cast<std::size_t>(workers) * 8), 1, 64);
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> lowestFailure{std::numeric_limits<std::size_t>::max()};
  std::mutex errMutex;
  std::exception_ptr firstError;
  std::size_t firstErrorIndex = std::numeric_limits<std::size_t>::max();

  // Fail fast without losing determinism: chunk claims are monotonic, so
  // every index below a failing one was already claimed (and will finish);
  // chunks claimed entirely above the lowest failure so far can never
  // lower it and are safe to skip. The rethrown exception is therefore the
  // lowest-index one — what the serial loop would have thrown first.
  auto worker = [&] {
    while (true) {
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      if (begin > lowestFailure.load(std::memory_order_relaxed)) return;
      const std::size_t end = std::min(n, begin + chunk);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          task(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(errMutex);
          if (i < firstErrorIndex) {
            firstErrorIndex = i;
            firstError = std::current_exception();
            lowestFailure.store(i, std::memory_order_relaxed);
          }
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace xlv::campaign
