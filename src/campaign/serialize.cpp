#include "campaign/serialize.h"

#include "analysis/mutant_cache.h"
#include "util/codec.h"

namespace xlv::campaign {

using util::Decoder;
using util::DecodeError;
using util::Encoder;

namespace {

constexpr const char* kSpecTag = "campaign-spec";
constexpr const char* kResultTag = "campaign-result";
constexpr const char* kAnalysisTag = "analysis-report";
constexpr const char* kMutantTag = "mutant-result";
constexpr const char* kPrefixTag = "flow-prefix";

// --- enum <-> canonical wire names ------------------------------------------
// Enums travel as names, not raw integers: the decoder rejects values a
// different build would interpret differently, and shard files stay
// human-readable. Forward mappings are the shared canonical ones
// (insertion::sensorKindName, core::mutantSetVariantName,
// mutation::mutantKindName); only the reverse lookups live here.

using insertion::sensorKindName;

insertion::SensorKind sensorKindByName(const std::string& s) {
  if (s == "razor") return insertion::SensorKind::Razor;
  if (s == "counter") return insertion::SensorKind::Counter;
  throw DecodeError("unknown sensor kind '" + s + "'");
}

core::MutantSetVariant mutantSetByName(const std::string& s) {
  if (s == "full") return core::MutantSetVariant::Full;
  if (s == "min") return core::MutantSetVariant::MinDelay;
  if (s == "max") return core::MutantSetVariant::MaxDelay;
  throw DecodeError("unknown mutant-set variant '" + s + "'");
}

mutation::MutantKind mutantKindByName(const std::string& s) {
  const auto kind = mutation::mutantKindFromName(s);
  if (!kind) throw DecodeError("unknown mutant kind '" + s + "'");
  return *kind;
}

analysis::SimBackend simBackendByName(const std::string& s) {
  if (s == "auto") return analysis::SimBackend::Auto;
  if (s == "interpreter") return analysis::SimBackend::Interpreter;
  if (s == "native") return analysis::SimBackend::Native;
  throw DecodeError("unknown simulation backend '" + s + "'");
}

// --- field-group helpers -----------------------------------------------------

void putCorner(Encoder& e, const sta::Corner& c) {
  e.str("corner.name", c.name);
  e.f64("corner.process", c.processFactor);
  e.f64("corner.voltage", c.voltageFactor);
  e.f64("corner.temperature", c.temperatureFactor);
}

sta::Corner getCorner(Decoder& d) {
  sta::Corner c;
  c.name = d.str("corner.name");
  c.processFactor = d.f64("corner.process");
  c.voltageFactor = d.f64("corner.voltage");
  c.temperatureFactor = d.f64("corner.temperature");
  return c;
}

void putOptions(Encoder& e, const core::FlowOptions& o) {
  e.str("opt.sensorKind", sensorKindName(o.sensorKind));
  e.u64("opt.testbenchCycles", o.testbenchCycles);
  e.boolean("opt.hasCorner", o.staCorner.has_value());
  if (o.staCorner) putCorner(e, *o.staCorner);
  e.boolean("opt.hasThreshold", o.staThresholdFraction.has_value());
  if (o.staThresholdFraction) e.f64("opt.threshold", *o.staThresholdFraction);
  e.boolean("opt.hasSpread", o.staSpreadFraction.has_value());
  if (o.staSpreadFraction) e.f64("opt.spread", *o.staSpreadFraction);
  e.boolean("opt.hasHfRatio", o.hfRatio.has_value());
  if (o.hfRatio) e.i64("opt.hfRatio", *o.hfRatio);
  e.str("opt.mutantSet", core::mutantSetVariantName(o.mutantSet));
  e.u64("opt.mutantBegin", o.mutantBegin);
  e.u64("opt.mutantEnd", o.mutantEnd);
  e.boolean("opt.useGoldenCache", o.useGoldenCache);
  e.boolean("opt.useMutantCache", o.useMutantCache);
  e.i64("opt.timingRepetitions", o.timingRepetitions);
  e.boolean("opt.measureRtl", o.measureRtl);
  e.boolean("opt.measureOptimized", o.measureOptimized);
  e.boolean("opt.runMutationAnalysis", o.runMutationAnalysis);
  e.i64("opt.analysisThreads", o.analysisThreads);
  e.str("opt.backend", analysis::simBackendName(o.backend));
  e.i64("opt.batch", o.batch);
  e.boolean("opt.measureTlm", o.measureTlm);
}

core::FlowOptions getOptions(Decoder& d) {
  core::FlowOptions o;
  o.sensorKind = sensorKindByName(d.str("opt.sensorKind"));
  o.testbenchCycles = d.u64("opt.testbenchCycles");
  if (d.boolean("opt.hasCorner")) o.staCorner = getCorner(d);
  if (d.boolean("opt.hasThreshold")) o.staThresholdFraction = d.f64("opt.threshold");
  if (d.boolean("opt.hasSpread")) o.staSpreadFraction = d.f64("opt.spread");
  if (d.boolean("opt.hasHfRatio")) o.hfRatio = static_cast<int>(d.i64("opt.hfRatio"));
  o.mutantSet = mutantSetByName(d.str("opt.mutantSet"));
  o.mutantBegin = static_cast<std::size_t>(d.u64("opt.mutantBegin"));
  o.mutantEnd = static_cast<std::size_t>(d.u64("opt.mutantEnd"));
  o.useGoldenCache = d.boolean("opt.useGoldenCache");
  o.useMutantCache = d.boolean("opt.useMutantCache");
  o.timingRepetitions = static_cast<int>(d.i64("opt.timingRepetitions"));
  o.measureRtl = d.boolean("opt.measureRtl");
  o.measureOptimized = d.boolean("opt.measureOptimized");
  o.runMutationAnalysis = d.boolean("opt.runMutationAnalysis");
  o.analysisThreads = static_cast<int>(d.i64("opt.analysisThreads"));
  o.backend = simBackendByName(d.str("opt.backend"));
  o.batch = static_cast<int>(d.i64("opt.batch"));
  o.measureTlm = d.boolean("opt.measureTlm");
  return o;
}

void putMutantSpec(Encoder& e, const mutation::MutantSpec& m) {
  e.str("spec.target", m.targetSignal);
  e.str("spec.kind", mutation::mutantKindName(m.kind));
  e.i64("spec.deltaTicks", m.deltaTicks);
}

mutation::MutantSpec getMutantSpec(Decoder& d) {
  mutation::MutantSpec m;
  m.targetSignal = d.str("spec.target");
  m.kind = mutantKindByName(d.str("spec.kind"));
  m.deltaTicks = static_cast<int>(d.i64("spec.deltaTicks"));
  return m;
}

// The content fields come from the ONE shared field list
// (analysis::putMutantResultFields), so this wire codec and the disk
// artifact codec cannot drift apart; only the id — variant-local, excluded
// from artifacts — is added here.
void putMutantResult(Encoder& e, const analysis::MutantResult& r) {
  e.i64("mut.id", r.id);
  analysis::putMutantResultFields(e, "mut.", r);
}

analysis::MutantResult getMutantResult(Decoder& d) {
  const int id = static_cast<int>(d.i64("mut.id"));
  analysis::MutantResult r = analysis::getMutantResultFields(d, "mut.");
  r.id = id;
  return r;
}

void putAnalysis(Encoder& e, const analysis::AnalysisReport& a) {
  e.u64("an.cyclesPerRun", a.cyclesPerRun);
  e.u64("an.cyclesSimulated", a.cyclesSimulated);
  e.u64("an.cyclesSkipped", a.cyclesSkipped);
  e.f64("an.simSeconds", a.simSeconds);
  e.f64("an.wallSeconds", a.wallSeconds);
  e.f64("an.goldenSeconds", a.goldenSeconds);
  e.boolean("an.goldenFromCache", a.goldenFromCache);
  e.boolean("an.goldenFromDisk", a.goldenFromDisk);
  e.i64("an.mutantCacheHits", a.mutantCacheHits);
  e.i64("an.threadsUsed", a.threadsUsed);
  e.i64("an.nativeCompiles", a.nativeCompiles);
  e.i64("an.nativeCacheHits", a.nativeCacheHits);
  e.i64("an.batchedMutants", a.batchedMutants);
  e.beginList("an.results", a.results.size());
  for (const auto& r : a.results) putMutantResult(e, r);
}

analysis::AnalysisReport getAnalysis(Decoder& d) {
  analysis::AnalysisReport a;
  a.cyclesPerRun = d.u64("an.cyclesPerRun");
  a.cyclesSimulated = d.u64("an.cyclesSimulated");
  a.cyclesSkipped = d.u64("an.cyclesSkipped");
  a.simSeconds = d.f64("an.simSeconds");
  a.wallSeconds = d.f64("an.wallSeconds");
  a.goldenSeconds = d.f64("an.goldenSeconds");
  a.goldenFromCache = d.boolean("an.goldenFromCache");
  a.goldenFromDisk = d.boolean("an.goldenFromDisk");
  a.mutantCacheHits = static_cast<int>(d.i64("an.mutantCacheHits"));
  a.threadsUsed = static_cast<int>(d.i64("an.threadsUsed"));
  a.nativeCompiles = static_cast<int>(d.i64("an.nativeCompiles"));
  a.nativeCacheHits = static_cast<int>(d.i64("an.nativeCacheHits"));
  a.batchedMutants = static_cast<int>(d.i64("an.batchedMutants"));
  a.results.resize(d.beginList("an.results"));
  for (auto& r : a.results) r = getMutantResult(d);
  return a;
}

void putSensor(Encoder& e, const insertion::InsertedSensor& s) {
  e.str("sensor.endpoint", s.endpointName);
  e.str("sensor.instance", s.instanceName);
  e.str("sensor.error", s.errorSignal);
  e.str("sensor.q", s.qSignal);
  e.str("sensor.measVal", s.measValSignal);
  e.str("sensor.outOk", s.outOkSignal);
  e.f64("sensor.arrivalPs", s.endpointArrivalPs);
}

insertion::InsertedSensor getSensor(Decoder& d) {
  insertion::InsertedSensor s;
  s.endpointName = d.str("sensor.endpoint");
  s.instanceName = d.str("sensor.instance");
  s.errorSignal = d.str("sensor.error");
  s.qSignal = d.str("sensor.q");
  s.measValSignal = d.str("sensor.measVal");
  s.outOkSignal = d.str("sensor.outOk");
  s.endpointArrivalPs = d.f64("sensor.arrivalPs");
  return s;
}

// The portable FlowReport subset: every field sameResults compares plus the
// timing ledger — never the elaborated designs (see serialize.h).
void putReport(Encoder& e, const core::FlowReport& r) {
  e.str("rep.ipName", r.ipName);
  e.str("rep.sensorKind", sensorKindName(r.sensorKind));
  e.i64("rep.hfRatio", r.hfRatio);
  e.i64("rep.skippedEndpoints", r.skippedEndpoints);
  e.f64("rep.sensorAreaGates", r.sensorAreaGates);
  e.i64("rep.staCriticalCount", r.sta.criticalCount);
  e.f64("rep.staThresholdPs", r.sta.thresholdPs);
  e.f64("rep.staClockPeriodPs", r.sta.clockPeriodPs);
  e.f64("rep.staMinSlackPs", r.sta.minSlackPs);
  e.i64("rep.locRtlClean", r.loc.rtlClean);
  e.i64("rep.locRtlAugmented", r.loc.rtlAugmented);
  e.i64("rep.locTlm", r.loc.tlm);
  e.i64("rep.locTlmInjected", r.loc.tlmInjected);
  e.beginList("rep.sensors", r.sensors.size());
  for (const auto& s : r.sensors) putSensor(e, s);
  e.beginList("rep.mutantSpecs", r.mutantSpecs.size());
  for (const auto& m : r.mutantSpecs) putMutantSpec(e, m);
  putAnalysis(e, r.analysis);
}

core::FlowReport getReport(Decoder& d) {
  core::FlowReport r;
  r.ipName = d.str("rep.ipName");
  r.sensorKind = sensorKindByName(d.str("rep.sensorKind"));
  r.hfRatio = static_cast<int>(d.i64("rep.hfRatio"));
  r.skippedEndpoints = static_cast<int>(d.i64("rep.skippedEndpoints"));
  r.sensorAreaGates = d.f64("rep.sensorAreaGates");
  r.sta.criticalCount = static_cast<int>(d.i64("rep.staCriticalCount"));
  r.sta.thresholdPs = d.f64("rep.staThresholdPs");
  r.sta.clockPeriodPs = d.f64("rep.staClockPeriodPs");
  r.sta.minSlackPs = d.f64("rep.staMinSlackPs");
  r.loc.rtlClean = static_cast<int>(d.i64("rep.locRtlClean"));
  r.loc.rtlAugmented = static_cast<int>(d.i64("rep.locRtlAugmented"));
  r.loc.tlm = static_cast<int>(d.i64("rep.locTlm"));
  r.loc.tlmInjected = static_cast<int>(d.i64("rep.locTlmInjected"));
  r.sensors.resize(d.beginList("rep.sensors"));
  for (auto& s : r.sensors) s = getSensor(d);
  r.mutantSpecs.resize(d.beginList("rep.mutantSpecs"));
  for (auto& m : r.mutantSpecs) m = getMutantSpec(d);
  r.analysis = getAnalysis(d);
  return r;
}

void putItemResult(Encoder& e, const CampaignItemResult& it) {
  e.u64("item.taskId", it.taskId);
  e.str("item.label", it.label);
  e.str("item.error", it.error);
  e.f64("item.taskSeconds", it.taskSeconds);
  e.f64("item.goldenSeconds", it.goldenSeconds);
  e.boolean("item.goldenFromCache", it.goldenFromCache);
  e.boolean("item.prefixShared", it.prefixShared);
  putReport(e, it.report);
}

CampaignItemResult getItemResult(Decoder& d) {
  CampaignItemResult it;
  it.taskId = static_cast<std::size_t>(d.u64("item.taskId"));
  it.label = d.str("item.label");
  it.error = d.str("item.error");
  it.taskSeconds = d.f64("item.taskSeconds");
  it.goldenSeconds = d.f64("item.goldenSeconds");
  it.goldenFromCache = d.boolean("item.goldenFromCache");
  it.prefixShared = d.boolean("item.prefixShared");
  it.report = getReport(d);
  return it;
}

}  // namespace

std::vector<std::string> knownCaseStudyNames() {
  return {"Plasma", "DSP", "Filter", "Handshake"};
}

ips::CaseStudy buildCaseStudyByName(const std::string& name) {
  if (name == "Plasma") return ips::buildPlasmaCase();
  if (name == "DSP") return ips::buildDspCase();
  if (name == "Filter") return ips::buildFilterCase();
  if (name == "Handshake") return ips::buildHandshakeCase();
  throw DecodeError("unknown case study '" + name + "' (known: Plasma, DSP, Filter, Handshake)");
}

std::string encodeCampaignSpec(const CampaignSpec& spec) {
  Encoder e(kSpecTag, kCampaignCodecVersion);
  e.str("name", spec.name);
  e.i64("executor.threads", spec.executor.threads);
  e.i64("executor.chunkSize", spec.executor.chunkSize);
  e.beginList("items", spec.items.size());
  for (const auto& item : spec.items) {
    e.str("item.case", item.caseStudy.name);
    e.str("item.label", item.label);
    e.str("item.prefixKey", item.prefixKey);
    putOptions(e, item.options);
  }
  return e.take();
}

CampaignSpec decodeCampaignSpec(std::string_view data) {
  Decoder d(data, kSpecTag, kCampaignCodecVersion);
  CampaignSpec spec;
  spec.name = d.str("name");
  spec.executor.threads = static_cast<int>(d.i64("executor.threads"));
  spec.executor.chunkSize = static_cast<int>(d.i64("executor.chunkSize"));
  spec.items.resize(d.beginList("items"));
  for (auto& item : spec.items) {
    item.caseStudy = buildCaseStudyByName(d.str("item.case"));
    item.label = d.str("item.label");
    item.prefixKey = d.str("item.prefixKey");
    item.options = getOptions(d);
  }
  d.finish();
  return spec;
}

std::string encodeCampaignResult(const CampaignResult& result) {
  Encoder e(kResultTag, kCampaignCodecVersion);
  e.str("name", result.name);
  e.f64("simSeconds", result.simSeconds);
  e.f64("goldenSeconds", result.goldenSeconds);
  e.i64("goldenCacheHits", result.goldenCacheHits);
  e.i64("prefixCacheHits", result.prefixCacheHits);
  e.i64("mutantCacheHits", result.mutantCacheHits);
  e.i64("diskHits", result.diskHits);
  e.i64("diskStores", result.diskStores);
  e.i64("diskEvictions", result.diskEvictions);
  e.u64("cyclesSimulated", result.cyclesSimulated);
  e.u64("cyclesSkipped", result.cyclesSkipped);
  e.i64("nativeCompiles", result.nativeCompiles);
  e.i64("nativeCacheHits", result.nativeCacheHits);
  e.i64("batchedMutants", result.batchedMutants);
  e.f64("wallSeconds", result.wallSeconds);
  e.i64("threadsUsed", result.threadsUsed);
  e.beginList("items", result.items.size());
  for (const auto& it : result.items) putItemResult(e, it);
  return e.take();
}

CampaignResult decodeCampaignResult(std::string_view data) {
  Decoder d(data, kResultTag, kCampaignCodecVersion);
  CampaignResult result;
  result.name = d.str("name");
  result.simSeconds = d.f64("simSeconds");
  result.goldenSeconds = d.f64("goldenSeconds");
  result.goldenCacheHits = static_cast<int>(d.i64("goldenCacheHits"));
  result.prefixCacheHits = static_cast<int>(d.i64("prefixCacheHits"));
  result.mutantCacheHits = static_cast<int>(d.i64("mutantCacheHits"));
  result.diskHits = static_cast<int>(d.i64("diskHits"));
  result.diskStores = static_cast<int>(d.i64("diskStores"));
  result.diskEvictions = static_cast<int>(d.i64("diskEvictions"));
  result.cyclesSimulated = d.u64("cyclesSimulated");
  result.cyclesSkipped = d.u64("cyclesSkipped");
  result.nativeCompiles = static_cast<int>(d.i64("nativeCompiles"));
  result.nativeCacheHits = static_cast<int>(d.i64("nativeCacheHits"));
  result.batchedMutants = static_cast<int>(d.i64("batchedMutants"));
  result.wallSeconds = d.f64("wallSeconds");
  result.threadsUsed = static_cast<int>(d.i64("threadsUsed"));
  result.items.resize(d.beginList("items"));
  for (auto& it : result.items) it = getItemResult(d);
  d.finish();
  return result;
}

std::string encodeAnalysisReport(const analysis::AnalysisReport& report) {
  Encoder e(kAnalysisTag, kCampaignCodecVersion);
  putAnalysis(e, report);
  return e.take();
}

analysis::AnalysisReport decodeAnalysisReport(std::string_view data) {
  Decoder d(data, kAnalysisTag, kCampaignCodecVersion);
  analysis::AnalysisReport report = getAnalysis(d);
  d.finish();
  return report;
}

std::string encodeMutantResult(const analysis::MutantResult& result) {
  Encoder e(kMutantTag, kCampaignCodecVersion);
  putMutantResult(e, result);
  return e.take();
}

analysis::MutantResult decodeMutantResult(std::string_view data) {
  Decoder d(data, kMutantTag, kCampaignCodecVersion);
  analysis::MutantResult result = getMutantResult(d);
  d.finish();
  return result;
}

// --- flow-prefix artifact ----------------------------------------------------

std::string encodeFlowPrefix(const core::FlowPrefix& prefix) {
  const core::FlowReport& r = prefix.report;
  Encoder e(kPrefixTag, kCampaignCodecVersion);
  e.str("ip", r.ipName);
  e.str("kind", sensorKindName(r.sensorKind));
  e.f64("sta.thresholdPs", r.sta.thresholdPs);
  e.f64("sta.clockPeriodPs", r.sta.clockPeriodPs);
  e.i64("sta.criticalCount", r.sta.criticalCount);
  e.f64("sta.minSlackPs", r.sta.minSlackPs);
  e.beginList("sta.paths", r.sta.paths.size());
  for (const auto& p : r.sta.paths) {
    e.i64("path.endpoint", p.endpoint);
    e.str("path.endpointName", p.endpointName);
    e.i64("path.startpoint", p.startpoint);
    e.str("path.startpointName", p.startpointName);
    e.f64("path.arrivalPs", p.arrivalPs);
    e.f64("path.slackPs", p.slackPs);
    e.f64("path.logicLevels", p.logicLevels);
    e.boolean("path.critical", p.critical);
  }
  e.beginList("sensors", r.sensors.size());
  for (const auto& s : r.sensors) putSensor(e, s);
  return e.take();
}

core::FlowPrefix decodeFlowPrefix(std::string_view data, const ips::CaseStudy& cs,
                                  const core::FlowOptions& opts) {
  Decoder d(data, kPrefixTag, kCampaignCodecVersion);
  const std::string ip = d.str("ip");
  const insertion::SensorKind kind = sensorKindByName(d.str("kind"));
  sta::StaReport sta;
  sta.thresholdPs = d.f64("sta.thresholdPs");
  sta.clockPeriodPs = d.f64("sta.clockPeriodPs");
  sta.criticalCount = static_cast<int>(d.i64("sta.criticalCount"));
  sta.minSlackPs = d.f64("sta.minSlackPs");
  sta.paths.resize(d.beginList("sta.paths"));
  for (auto& p : sta.paths) {
    p.endpoint = static_cast<ir::SymbolId>(d.i64("path.endpoint"));
    p.endpointName = d.str("path.endpointName");
    p.startpoint = static_cast<ir::SymbolId>(d.i64("path.startpoint"));
    p.startpointName = d.str("path.startpointName");
    p.arrivalPs = d.f64("path.arrivalPs");
    p.slackPs = d.f64("path.slackPs");
    p.logicLevels = d.f64("path.logicLevels");
    p.critical = d.boolean("path.critical");
  }
  std::vector<insertion::InsertedSensor> storedSensors(d.beginList("sensors"));
  for (auto& s : storedSensors) s = getSensor(d);
  d.finish();

  if (ip != cs.name || kind != opts.sensorKind) {
    throw DecodeError("flow-prefix artifact was recorded for " + ip + "/" +
                      sensorKindName(kind) + ", requested " + cs.name + "/" +
                      sensorKindName(opts.sensorKind));
  }
  // Re-derive the designs deterministically from the stored STA report,
  // then cross-check the rebuilt sensor list against the stored one: a
  // mismatch means the artifact predates a code or model change (the key
  // failed to capture it) and must be rebuilt from scratch, never trusted.
  core::FlowPrefix prefix = core::rebuildFlowPrefix(cs, opts, sta);
  const auto& rebuilt = prefix.report.sensors;
  bool consistent = rebuilt.size() == storedSensors.size();
  for (std::size_t i = 0; consistent && i < rebuilt.size(); ++i) {
    consistent = rebuilt[i].endpointName == storedSensors[i].endpointName &&
                 rebuilt[i].instanceName == storedSensors[i].instanceName &&
                 rebuilt[i].endpointArrivalPs == storedSensors[i].endpointArrivalPs;
  }
  if (!consistent) {
    throw DecodeError("flow-prefix artifact for " + cs.name +
                      " disagrees with the rebuilt insertion (stale artifact)");
  }
  return prefix;
}

// --- dispatcher daemon wire frames -------------------------------------------

const char* const kSubmitFrameTag = "dispatch-submit";
const char* const kStatusFrameTag = "dispatch-status";
const char* const kHeartbeatFrameTag = "dispatch-heartbeat";
const char* const kResultFrameTag = "dispatch-result";
const char* const kClientSubmitFrameTag = "client-submit";
const char* const kAcceptFrameTag = "dispatch-accept";
const char* const kRejectFrameTag = "dispatch-reject";
const char* const kItemResultFrameTag = "dispatch-item-result";
const char* const kCampaignDoneFrameTag = "dispatch-done";

namespace {

void putFrameUnit(Encoder& e, const ShardUnit& u) {
  e.u64("unit.taskId", u.taskId);
  e.u64("unit.mutantBegin", u.mutantBegin);
  e.u64("unit.mutantEnd", u.mutantEnd);
}

ShardUnit getFrameUnit(Decoder& d) {
  ShardUnit u;
  u.taskId = static_cast<std::size_t>(d.u64("unit.taskId"));
  u.mutantBegin = static_cast<std::size_t>(d.u64("unit.mutantBegin"));
  u.mutantEnd = static_cast<std::size_t>(d.u64("unit.mutantEnd"));
  return u;
}

}  // namespace

bool ResultFrame::operator==(const ResultFrame& other) const {
  // ShardOutput carries a nested CampaignResult with no memberwise
  // equality; the byte-stable canonical encoding IS its identity.
  return seq == other.seq && taskIndex == other.taskIndex && attempt == other.attempt &&
         encodeShardOutput(output) == encodeShardOutput(other.output);
}

std::string encodeSubmitFrame(const SubmitFrame& f) {
  Encoder e(kSubmitFrameTag, kCampaignCodecVersion);
  e.u64("specFnv", f.specFnv);
  e.u64("campaignId", f.campaignId);
  e.u64("seq", f.seq);
  e.u64("taskIndex", f.taskIndex);
  e.u64("taskCount", f.taskCount);
  e.u64("attempt", f.attempt);
  putFrameUnit(e, f.unit);
  e.str("specPath", f.specPath);
  e.boolean("shutdown", f.shutdown);
  return e.take();
}

SubmitFrame decodeSubmitFrame(std::string_view data) {
  Decoder d(data, kSubmitFrameTag, kCampaignCodecVersion);
  SubmitFrame f;
  f.specFnv = d.u64("specFnv");
  f.campaignId = d.u64("campaignId");
  f.seq = d.u64("seq");
  f.taskIndex = d.u64("taskIndex");
  f.taskCount = d.u64("taskCount");
  f.attempt = d.u64("attempt");
  f.unit = getFrameUnit(d);
  f.specPath = d.str("specPath");
  f.shutdown = d.boolean("shutdown");
  d.finish();
  return f;
}

std::string encodeStatusFrame(const StatusFrame& f) {
  Encoder e(kStatusFrameTag, kCampaignCodecVersion);
  e.u64("workerIndex", f.workerIndex);
  e.u64("generation", f.generation);
  e.u64("itemsDone", f.itemsDone);
  e.str("state", f.state);
  return e.take();
}

StatusFrame decodeStatusFrame(std::string_view data) {
  Decoder d(data, kStatusFrameTag, kCampaignCodecVersion);
  StatusFrame f;
  f.workerIndex = d.u64("workerIndex");
  f.generation = d.u64("generation");
  f.itemsDone = d.u64("itemsDone");
  f.state = d.str("state");
  if (f.state != "ready" && f.state != "working") {
    throw DecodeError("status frame: unknown state '" + f.state + "'");
  }
  d.finish();
  return f;
}

std::string encodeHeartbeatFrame(const HeartbeatFrame& f) {
  Encoder e(kHeartbeatFrameTag, kCampaignCodecVersion);
  e.u64("workerIndex", f.workerIndex);
  e.u64("generation", f.generation);
  e.u64("seq", f.seq);
  e.u64("itemsDone", f.itemsDone);
  return e.take();
}

HeartbeatFrame decodeHeartbeatFrame(std::string_view data) {
  Decoder d(data, kHeartbeatFrameTag, kCampaignCodecVersion);
  HeartbeatFrame f;
  f.workerIndex = d.u64("workerIndex");
  f.generation = d.u64("generation");
  f.seq = d.u64("seq");
  f.itemsDone = d.u64("itemsDone");
  d.finish();
  return f;
}

std::string encodeResultFrame(const ResultFrame& f) {
  Encoder e(kResultFrameTag, kCampaignCodecVersion);
  e.u64("campaignId", f.campaignId);
  e.u64("seq", f.seq);
  e.u64("taskIndex", f.taskIndex);
  e.u64("attempt", f.attempt);
  // The output travels as a nested shard-output document: its own header
  // keeps the schema independently checkable, exactly like the result
  // nested inside encodeShardOutput itself.
  e.str("output", encodeShardOutput(f.output));
  return e.take();
}

ResultFrame decodeResultFrame(std::string_view data) {
  Decoder d(data, kResultFrameTag, kCampaignCodecVersion);
  ResultFrame f;
  f.campaignId = d.u64("campaignId");
  f.seq = d.u64("seq");
  f.taskIndex = d.u64("taskIndex");
  f.attempt = d.u64("attempt");
  f.output = decodeShardOutput(d.str("output"));
  d.finish();
  return f;
}

// --- socket-service client frames --------------------------------------------

bool ItemResultFrame::operator==(const ItemResultFrame& other) const {
  // Same rationale as ResultFrame: the canonical encoding is the nested
  // ShardOutput's identity.
  return campaignId == other.campaignId && taskIndex == other.taskIndex &&
         taskCount == other.taskCount &&
         encodeShardOutput(output) == encodeShardOutput(other.output);
}

std::string encodeClientSubmitFrame(const ClientSubmitFrame& f) {
  Encoder e(kClientSubmitFrameTag, kCampaignCodecVersion);
  e.str("clientName", f.clientName);
  e.str("spec", f.spec);
  e.u64("maxFragmentMutants", f.maxFragmentMutants);
  e.u64("deadlineMs", f.deadlineMs);
  return e.take();
}

ClientSubmitFrame decodeClientSubmitFrame(std::string_view data) {
  Decoder d(data, kClientSubmitFrameTag, kCampaignCodecVersion);
  ClientSubmitFrame f;
  f.clientName = d.str("clientName");
  f.spec = d.str("spec");
  f.maxFragmentMutants = d.u64("maxFragmentMutants");
  f.deadlineMs = d.u64("deadlineMs");
  d.finish();
  return f;
}

std::string encodeAcceptFrame(const AcceptFrame& f) {
  Encoder e(kAcceptFrameTag, kCampaignCodecVersion);
  e.u64("campaignId", f.campaignId);
  e.u64("specFnv", f.specFnv);
  e.u64("unitCount", f.unitCount);
  return e.take();
}

AcceptFrame decodeAcceptFrame(std::string_view data) {
  Decoder d(data, kAcceptFrameTag, kCampaignCodecVersion);
  AcceptFrame f;
  f.campaignId = d.u64("campaignId");
  f.specFnv = d.u64("specFnv");
  f.unitCount = d.u64("unitCount");
  if (f.campaignId == 0) throw DecodeError("accept frame: campaignId must be nonzero");
  d.finish();
  return f;
}

std::string encodeRejectFrame(const RejectFrame& f) {
  Encoder e(kRejectFrameTag, kCampaignCodecVersion);
  e.str("reason", f.reason);
  e.u64("retryAfterMs", f.retryAfterMs);
  return e.take();
}

RejectFrame decodeRejectFrame(std::string_view data) {
  Decoder d(data, kRejectFrameTag, kCampaignCodecVersion);
  RejectFrame f;
  f.reason = d.str("reason");
  f.retryAfterMs = d.u64("retryAfterMs");
  d.finish();
  return f;
}

std::string encodeItemResultFrame(const ItemResultFrame& f) {
  Encoder e(kItemResultFrameTag, kCampaignCodecVersion);
  e.u64("campaignId", f.campaignId);
  e.u64("taskIndex", f.taskIndex);
  e.u64("taskCount", f.taskCount);
  e.str("output", encodeShardOutput(f.output));
  return e.take();
}

ItemResultFrame decodeItemResultFrame(std::string_view data) {
  Decoder d(data, kItemResultFrameTag, kCampaignCodecVersion);
  ItemResultFrame f;
  f.campaignId = d.u64("campaignId");
  f.taskIndex = d.u64("taskIndex");
  f.taskCount = d.u64("taskCount");
  f.output = decodeShardOutput(d.str("output"));
  d.finish();
  return f;
}

std::string encodeCampaignDoneFrame(const CampaignDoneFrame& f) {
  Encoder e(kCampaignDoneFrameTag, kCampaignCodecVersion);
  e.u64("campaignId", f.campaignId);
  e.u64("unitsTotal", f.unitsTotal);
  e.u64("unitsCompleted", f.unitsCompleted);
  e.u64("requeues", f.requeues);
  e.boolean("cancelled", f.cancelled);
  e.str("error", f.error);
  e.beginList("quarantined", f.quarantined.size());
  for (const std::uint64_t q : f.quarantined) e.u64("q", q);
  return e.take();
}

CampaignDoneFrame decodeCampaignDoneFrame(std::string_view data) {
  Decoder d(data, kCampaignDoneFrameTag, kCampaignCodecVersion);
  CampaignDoneFrame f;
  f.campaignId = d.u64("campaignId");
  f.unitsTotal = d.u64("unitsTotal");
  f.unitsCompleted = d.u64("unitsCompleted");
  f.requeues = d.u64("requeues");
  f.cancelled = d.boolean("cancelled");
  f.error = d.str("error");
  f.quarantined.resize(d.beginList("quarantined"));
  for (std::uint64_t& q : f.quarantined) q = d.u64("q");
  d.finish();
  return f;
}

}  // namespace xlv::campaign
