// Corner sweeps as campaign axes (ROADMAP; the configuration-coverage
// direction of PAPERS.md).
//
// A SweepSpec describes a cross-product over configuration axes — STA
// corner / V-f operating point, threshold and spread binning fractions, HF
// clock ratio, mutant-set variant — for a set of case studies and sensor
// kinds. expandSweep() flattens it into an ordinary CampaignSpec: one
// CampaignItem per axis-value combination, labelled deterministically as
//
//   <ip>/<sensor>[/<corner>][/thr=<v>][/spread=<v>][/hf=<v>][/mutants=<v>]
//
// (an axis contributes a label segment only when it is actually swept, i.e.
// its value list is non-empty). Item order is the nested-loop order
// cases > sensorKinds > corners > thresholds > spreads > hfRatios >
// mutantSets, so a sweep result is bit-identical across thread counts by
// the campaign's task-id merge rule.
//
// Redundant work is shared, not repeated:
//   * stage prefixes — points that agree on (IP, kind, corner, threshold,
//     spread) share one elaborate+insertion via the process-wide
//     core::flowPrefixCache() (items carry the prefix key; the first task
//     to need a prefix builds it, concurrent tasks block on that build);
//   * golden traces — points whose augmented design, testbench, cycles and
//     hfRatio agree (e.g. differing only in mutant set) reuse one golden
//     recording via analysis/golden_cache.h.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/campaign.h"

namespace xlv::campaign {

/// The value lists of the sweep cross-product. An empty list means "axis
/// not swept": the base/case-study value applies and no label segment is
/// emitted. sensorKinds is the only axis that defaults to a non-empty set
/// (the base option's kind) because every flow needs one.
struct SweepAxes {
  std::vector<insertion::SensorKind> sensorKinds;
  std::vector<sta::Corner> corners;
  std::vector<double> thresholdFractions;
  std::vector<double> spreadFractions;
  /// Applies to Counter items only — Razor ignores hfRatio, so for Razor
  /// points this axis collapses to one unlabelled slot instead of emitting
  /// duplicate sweep points.
  std::vector<int> hfRatios;
  std::vector<core::MutantSetVariant> mutantSets;
  /// Simulation engines for the mutation campaign (Interpreter / Native).
  /// Points differing only in backend share the golden trace AND the
  /// per-mutant results — backends are bit-identical, so with
  /// shareMutantResults the second backend's point is analysis-free, which
  /// is itself a cross-engine conformance check.
  std::vector<analysis::SimBackend> backends;
};

struct SweepSpec {
  std::string name = "sweep";
  std::vector<ips::CaseStudy> cases;
  core::FlowOptions base;  ///< applied to every point, axes override per point
  SweepAxes axes;
  ExecutorConfig executor;
  /// Share elaborate+insertion across points via core::flowPrefixCache().
  bool sharePrefixes = true;
  /// Share golden traces via the process-wide cache (sets
  /// FlowOptions::useGoldenCache on every point).
  bool shareGoldenTraces = true;
  /// Share per-mutant results via analysis::mutantResultCache() (sets
  /// FlowOptions::useMutantCache on every point): the mutant-set-variant
  /// axis becomes analysis-free once `full` has simulated its mutants
  /// (full ⊃ min/max), and with a util::processArtifactStore() configured
  /// the reuse extends across processes and runs.
  bool shareMutantResults = true;
};

/// Number of items expandSweep() will generate.
std::size_t sweepCardinality(const SweepSpec& sweep);

/// Deterministic label of one sweep point (also used by expandSweep).
std::string sweepPointLabel(const ips::CaseStudy& cs, const core::FlowOptions& opts,
                            const SweepAxes& axes);

/// Flatten the cross-product into a CampaignSpec (see file comment for the
/// ordering and sharing rules). Forces analysisThreads = 1 on every item
/// when the outer executor is parallel, mirroring fullMatrixCampaign.
CampaignSpec expandSweep(const SweepSpec& sweep);

/// Convenience: expandSweep + runCampaign.
CampaignResult runSweep(const SweepSpec& sweep);

}  // namespace xlv::campaign
