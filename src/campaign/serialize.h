// Cross-process serialization of the campaign domain types.
//
// Process-level sharding (campaign/shard.h) ships a CampaignSpec to worker
// processes and ships their CampaignResults back; the codecs here are the
// wire layer for both, built on util/codec.h (versioned header,
// length-prefixed fields, strict field-order checking).
//
// Two deliberate asymmetries versus the in-memory structs:
//
//   * Case studies travel BY NAME. A CaseStudy owns an elaborated module and
//     a testbench closure — neither serializes — and every process links the
//     same IP builders, so the name ("Plasma", "DSP", "Filter", "Handshake")
//     is the complete, version-checked identity. decodeCampaignSpec rebuilds
//     the case study through buildCaseStudyByName and re-derives what the
//     builders own; an unknown name is a DecodeError.
//
//   * Results carry the PORTABLE subset of a FlowReport: every field
//     CampaignResult::sameResults compares (per-mutant analysis results,
//     mutant specs, inserted sensors, STA/LoC/area summary) plus the
//     timing/cache ledgers — but not the elaborated designs. A decoded
//     result therefore supports sameResults, ok(), find() and ledger
//     aggregation bit-exactly, which is all the merge and diff paths need.
//
// Every encoder is byte-stable: encode(decode(encode(x))) == encode(x)
// (doubles are hexfloat-rendered, so finite values round-trip exactly).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.h"

namespace xlv::campaign {

/// Domain schema version shared by every campaign codec; bump on any field
/// change so stale shard artifacts are rejected instead of misread.
/// v2: FlowOptions::useMutantCache, the mutant/disk cache ledgers on
/// AnalysisReport and CampaignResult, and the flow-prefix artifact codec.
/// v3: the cyclesSimulated/cyclesSkipped ledgers of the divergence-driven
/// mutant simulation on AnalysisReport and CampaignResult.
/// v4: FlowOptions::backend/batch/measureTlm and the native-backend ledgers
/// (nativeCompiles/nativeCacheHits/batchedMutants) on AnalysisReport and
/// CampaignResult.
inline constexpr int kCampaignCodecVersion = 4;

/// Names accepted by buildCaseStudyByName (the spec wire format's case-study
/// identity space).
std::vector<std::string> knownCaseStudyNames();

/// Rebuild a case study from its wire name; throws util::DecodeError on an
/// unknown name.
ips::CaseStudy buildCaseStudyByName(const std::string& name);

std::string encodeCampaignSpec(const CampaignSpec& spec);
CampaignSpec decodeCampaignSpec(std::string_view data);

std::string encodeCampaignResult(const CampaignResult& result);
CampaignResult decodeCampaignResult(std::string_view data);

std::string encodeAnalysisReport(const analysis::AnalysisReport& report);
analysis::AnalysisReport decodeAnalysisReport(std::string_view data);

std::string encodeMutantResult(const analysis::MutantResult& result);
analysis::MutantResult decodeMutantResult(std::string_view data);

/// Disk-spill codec of a core::FlowPrefix (the elaborate+insertion result
/// shared by sweep points; util/artifact_store.h domain "prefix"). The
/// designs themselves do not serialize — the artifact carries the STA
/// report plus the inserted-sensor list, and decodeFlowPrefix re-derives
/// everything else deterministically via core::rebuildFlowPrefix against
/// the given (cs, opts). A stored artifact whose identity or rebuilt
/// sensors disagree with (cs, opts) throws util::DecodeError, which the
/// store treats as corruption: rebuild, never a wrong prefix.
std::string encodeFlowPrefix(const core::FlowPrefix& prefix);
core::FlowPrefix decodeFlowPrefix(std::string_view data, const ips::CaseStudy& cs,
                                  const core::FlowOptions& opts);

}  // namespace xlv::campaign
