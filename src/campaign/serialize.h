// Cross-process serialization of the campaign domain types.
//
// Process-level sharding (campaign/shard.h) ships a CampaignSpec to worker
// processes and ships their CampaignResults back; the codecs here are the
// wire layer for both, built on util/codec.h (versioned header,
// length-prefixed fields, strict field-order checking).
//
// Two deliberate asymmetries versus the in-memory structs:
//
//   * Case studies travel BY NAME. A CaseStudy owns an elaborated module and
//     a testbench closure — neither serializes — and every process links the
//     same IP builders, so the name ("Plasma", "DSP", "Filter", "Handshake")
//     is the complete, version-checked identity. decodeCampaignSpec rebuilds
//     the case study through buildCaseStudyByName and re-derives what the
//     builders own; an unknown name is a DecodeError.
//
//   * Results carry the PORTABLE subset of a FlowReport: every field
//     CampaignResult::sameResults compares (per-mutant analysis results,
//     mutant specs, inserted sensors, STA/LoC/area summary) plus the
//     timing/cache ledgers — but not the elaborated designs. A decoded
//     result therefore supports sameResults, ok(), find() and ledger
//     aggregation bit-exactly, which is all the merge and diff paths need.
//
// Every encoder is byte-stable: encode(decode(encode(x))) == encode(x)
// (doubles are hexfloat-rendered, so finite values round-trip exactly).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/shard.h"

namespace xlv::campaign {

/// Domain schema version shared by every campaign codec; bump on any field
/// change so stale shard artifacts are rejected instead of misread.
/// v2: FlowOptions::useMutantCache, the mutant/disk cache ledgers on
/// AnalysisReport and CampaignResult, and the flow-prefix artifact codec.
/// v3: the cyclesSimulated/cyclesSkipped ledgers of the divergence-driven
/// mutant simulation on AnalysisReport and CampaignResult.
/// v4: FlowOptions::backend/batch/measureTlm and the native-backend ledgers
/// (nativeCompiles/nativeCacheHits/batchedMutants) on AnalysisReport and
/// CampaignResult.
/// v5: the dispatcher daemon wire frames (submit/status/heartbeat/result,
/// campaign/dispatch.h) — mixed-version dispatcher/worker pairs must refuse
/// to talk, so the frame schema shares the campaign domain version.
inline constexpr int kCampaignCodecVersion = 5;

/// Names accepted by buildCaseStudyByName (the spec wire format's case-study
/// identity space).
std::vector<std::string> knownCaseStudyNames();

/// Rebuild a case study from its wire name; throws util::DecodeError on an
/// unknown name.
ips::CaseStudy buildCaseStudyByName(const std::string& name);

std::string encodeCampaignSpec(const CampaignSpec& spec);
CampaignSpec decodeCampaignSpec(std::string_view data);

std::string encodeCampaignResult(const CampaignResult& result);
CampaignResult decodeCampaignResult(std::string_view data);

std::string encodeAnalysisReport(const analysis::AnalysisReport& report);
analysis::AnalysisReport decodeAnalysisReport(std::string_view data);

std::string encodeMutantResult(const analysis::MutantResult& result);
analysis::MutantResult decodeMutantResult(std::string_view data);

/// Disk-spill codec of a core::FlowPrefix (the elaborate+insertion result
/// shared by sweep points; util/artifact_store.h domain "prefix"). The
/// designs themselves do not serialize — the artifact carries the STA
/// report plus the inserted-sensor list, and decodeFlowPrefix re-derives
/// everything else deterministically via core::rebuildFlowPrefix against
/// the given (cs, opts). A stored artifact whose identity or rebuilt
/// sensors disagree with (cs, opts) throws util::DecodeError, which the
/// store treats as corruption: rebuild, never a wrong prefix.
std::string encodeFlowPrefix(const core::FlowPrefix& prefix);
core::FlowPrefix decodeFlowPrefix(std::string_view data, const ips::CaseStudy& cs,
                                  const core::FlowOptions& opts);

// --- dispatcher daemon wire frames (campaign/dispatch.h; codec v5) -----------
//
// The dispatcher and its worker subprocesses speak length-framed codec
// documents over pipes (later: sockets). Four frame kinds; every one is
// versioned with kCampaignCodecVersion, so a dispatcher never feeds work to
// a worker built against a different schema. util::peekDocumentTag picks
// the decoder; all four decoders are strict (DecodeError on truncation,
// corruption, reordering or version skew) and byte-stable.

/// Dispatcher -> worker: run one stealable unit (a whole campaign item or a
/// mutant-range fragment), or shut down cleanly.
struct SubmitFrame {
  std::uint64_t specFnv = 0;    ///< fingerprint of the spec the worker loaded
  std::uint64_t seq = 0;        ///< dispatcher-wide submission sequence number
  std::uint64_t taskIndex = 0;  ///< index into the dispatch unit list
  std::uint64_t taskCount = 0;  ///< total units (the merge's shardCount)
  std::uint64_t attempt = 0;    ///< 0 = first run, >0 = crash-recovery retry
  ShardUnit unit;
  bool shutdown = false;  ///< true: no more work; unit/task fields ignored
  bool operator==(const SubmitFrame&) const = default;
};

/// Worker -> dispatcher: lifecycle announcement ("ready" after spawn and
/// after each completed unit; "working" right after accepting a submit).
struct StatusFrame {
  std::uint64_t workerIndex = 0;
  std::uint64_t generation = 0;  ///< respawn generation of the worker slot
  std::uint64_t itemsDone = 0;   ///< units completed by this worker process
  std::string state;             ///< "ready" | "working"
  bool operator==(const StatusFrame&) const = default;
};

/// Worker -> dispatcher: periodic liveness beat while a unit is running. A
/// busy worker silent past the dispatcher's heartbeat timeout is SIGKILLed
/// and its unit re-queued.
struct HeartbeatFrame {
  std::uint64_t workerIndex = 0;
  std::uint64_t generation = 0;
  std::uint64_t seq = 0;  ///< submission this beat is for
  std::uint64_t itemsDone = 0;
  bool operator==(const HeartbeatFrame&) const = default;
};

/// Worker -> dispatcher: one completed unit's ShardOutput (shardIndex =
/// taskIndex, shardCount = taskCount), streamed back as soon as it
/// finishes so the dispatcher can merge incrementally.
struct ResultFrame {
  std::uint64_t seq = 0;
  std::uint64_t taskIndex = 0;
  std::uint64_t attempt = 0;
  ShardOutput output;
  bool operator==(const ResultFrame&) const;
};

std::string encodeSubmitFrame(const SubmitFrame& f);
SubmitFrame decodeSubmitFrame(std::string_view data);
std::string encodeStatusFrame(const StatusFrame& f);
StatusFrame decodeStatusFrame(std::string_view data);
std::string encodeHeartbeatFrame(const HeartbeatFrame& f);
HeartbeatFrame decodeHeartbeatFrame(std::string_view data);
std::string encodeResultFrame(const ResultFrame& f);
ResultFrame decodeResultFrame(std::string_view data);

/// The codec tags of the four frames ("dispatch-submit" etc.), as
/// util::peekDocumentTag reports them.
extern const char* const kSubmitFrameTag;
extern const char* const kStatusFrameTag;
extern const char* const kHeartbeatFrameTag;
extern const char* const kResultFrameTag;

}  // namespace xlv::campaign
