// Cross-process serialization of the campaign domain types.
//
// Process-level sharding (campaign/shard.h) ships a CampaignSpec to worker
// processes and ships their CampaignResults back; the codecs here are the
// wire layer for both, built on util/codec.h (versioned header,
// length-prefixed fields, strict field-order checking).
//
// Two deliberate asymmetries versus the in-memory structs:
//
//   * Case studies travel BY NAME. A CaseStudy owns an elaborated module and
//     a testbench closure — neither serializes — and every process links the
//     same IP builders, so the name ("Plasma", "DSP", "Filter", "Handshake")
//     is the complete, version-checked identity. decodeCampaignSpec rebuilds
//     the case study through buildCaseStudyByName and re-derives what the
//     builders own; an unknown name is a DecodeError.
//
//   * Results carry the PORTABLE subset of a FlowReport: every field
//     CampaignResult::sameResults compares (per-mutant analysis results,
//     mutant specs, inserted sensors, STA/LoC/area summary) plus the
//     timing/cache ledgers — but not the elaborated designs. A decoded
//     result therefore supports sameResults, ok(), find() and ledger
//     aggregation bit-exactly, which is all the merge and diff paths need.
//
// Every encoder is byte-stable: encode(decode(encode(x))) == encode(x)
// (doubles are hexfloat-rendered, so finite values round-trip exactly).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/shard.h"

namespace xlv::campaign {

/// Domain schema version shared by every campaign codec; bump on any field
/// change so stale shard artifacts are rejected instead of misread.
/// v2: FlowOptions::useMutantCache, the mutant/disk cache ledgers on
/// AnalysisReport and CampaignResult, and the flow-prefix artifact codec.
/// v3: the cyclesSimulated/cyclesSkipped ledgers of the divergence-driven
/// mutant simulation on AnalysisReport and CampaignResult.
/// v4: FlowOptions::backend/batch/measureTlm and the native-backend ledgers
/// (nativeCompiles/nativeCacheHits/batchedMutants) on AnalysisReport and
/// CampaignResult.
/// v5: the dispatcher daemon wire frames (submit/status/heartbeat/result,
/// campaign/dispatch.h) — mixed-version dispatcher/worker pairs must refuse
/// to talk, so the frame schema shares the campaign domain version.
/// v6: the socket service (campaign/server.h) — SubmitFrame/ResultFrame gain
/// the campaignId/specPath multiplexing coordinates, and the client-facing
/// frames (client-submit/accept/reject/item-result/done) join the schema.
/// v7: fault tolerance — ClientSubmitFrame gains the optional deadlineMs,
/// CampaignDoneFrame carries the quarantined unit indices (poison units
/// isolated by bisection instead of failing their campaign).
inline constexpr int kCampaignCodecVersion = 7;

/// Names accepted by buildCaseStudyByName (the spec wire format's case-study
/// identity space).
std::vector<std::string> knownCaseStudyNames();

/// Rebuild a case study from its wire name; throws util::DecodeError on an
/// unknown name.
ips::CaseStudy buildCaseStudyByName(const std::string& name);

std::string encodeCampaignSpec(const CampaignSpec& spec);
CampaignSpec decodeCampaignSpec(std::string_view data);

std::string encodeCampaignResult(const CampaignResult& result);
CampaignResult decodeCampaignResult(std::string_view data);

std::string encodeAnalysisReport(const analysis::AnalysisReport& report);
analysis::AnalysisReport decodeAnalysisReport(std::string_view data);

std::string encodeMutantResult(const analysis::MutantResult& result);
analysis::MutantResult decodeMutantResult(std::string_view data);

/// Disk-spill codec of a core::FlowPrefix (the elaborate+insertion result
/// shared by sweep points; util/artifact_store.h domain "prefix"). The
/// designs themselves do not serialize — the artifact carries the STA
/// report plus the inserted-sensor list, and decodeFlowPrefix re-derives
/// everything else deterministically via core::rebuildFlowPrefix against
/// the given (cs, opts). A stored artifact whose identity or rebuilt
/// sensors disagree with (cs, opts) throws util::DecodeError, which the
/// store treats as corruption: rebuild, never a wrong prefix.
std::string encodeFlowPrefix(const core::FlowPrefix& prefix);
core::FlowPrefix decodeFlowPrefix(std::string_view data, const ips::CaseStudy& cs,
                                  const core::FlowOptions& opts);

// --- dispatcher daemon wire frames (campaign/dispatch.h; codec v5) -----------
//
// The dispatcher and its worker subprocesses speak length-framed codec
// documents over pipes (later: sockets). Four frame kinds; every one is
// versioned with kCampaignCodecVersion, so a dispatcher never feeds work to
// a worker built against a different schema. util::peekDocumentTag picks
// the decoder; all four decoders are strict (DecodeError on truncation,
// corruption, reordering or version skew) and byte-stable.

/// Dispatcher -> worker: run one stealable unit (a whole campaign item or a
/// mutant-range fragment), or shut down cleanly.
struct SubmitFrame {
  std::uint64_t specFnv = 0;    ///< fingerprint of the spec the unit belongs to
  /// Which client campaign the unit belongs to when a server multiplexes
  /// several over one worker pool (campaign/server.h); 0 in the
  /// single-campaign `run` mode.
  std::uint64_t campaignId = 0;
  std::uint64_t seq = 0;        ///< dispatcher-wide submission sequence number
  std::uint64_t taskIndex = 0;  ///< index into the campaign's dispatch unit list
  std::uint64_t taskCount = 0;  ///< total units (the merge's shardCount)
  std::uint64_t attempt = 0;    ///< 0 = first run, >0 = crash-recovery retry
  ShardUnit unit;
  /// Spec handoff file for this unit's campaign. Empty = the worker's
  /// startup --spec (the `run` mode); non-empty = load (and cache by
  /// fingerprint) from this path, which is how one worker pool serves many
  /// campaigns. The specFnv cross-check applies either way.
  std::string specPath;
  bool shutdown = false;  ///< true: no more work; unit/task fields ignored
  bool operator==(const SubmitFrame&) const = default;
};

/// Worker -> dispatcher: lifecycle announcement ("ready" after spawn and
/// after each completed unit; "working" right after accepting a submit).
struct StatusFrame {
  std::uint64_t workerIndex = 0;
  std::uint64_t generation = 0;  ///< respawn generation of the worker slot
  std::uint64_t itemsDone = 0;   ///< units completed by this worker process
  std::string state;             ///< "ready" | "working"
  bool operator==(const StatusFrame&) const = default;
};

/// Worker -> dispatcher: periodic liveness beat while a unit is running. A
/// busy worker silent past the dispatcher's heartbeat timeout is SIGKILLed
/// and its unit re-queued.
struct HeartbeatFrame {
  std::uint64_t workerIndex = 0;
  std::uint64_t generation = 0;
  std::uint64_t seq = 0;  ///< submission this beat is for
  std::uint64_t itemsDone = 0;
  bool operator==(const HeartbeatFrame&) const = default;
};

/// Worker -> dispatcher: one completed unit's ShardOutput (shardIndex =
/// taskIndex, shardCount = taskCount), streamed back as soon as it
/// finishes so the dispatcher can merge incrementally.
struct ResultFrame {
  std::uint64_t campaignId = 0;  ///< echoed from the SubmitFrame (0 in run mode)
  std::uint64_t seq = 0;
  std::uint64_t taskIndex = 0;
  std::uint64_t attempt = 0;
  ShardOutput output;
  bool operator==(const ResultFrame&) const;
};

std::string encodeSubmitFrame(const SubmitFrame& f);
SubmitFrame decodeSubmitFrame(std::string_view data);
std::string encodeStatusFrame(const StatusFrame& f);
StatusFrame decodeStatusFrame(std::string_view data);
std::string encodeHeartbeatFrame(const HeartbeatFrame& f);
HeartbeatFrame decodeHeartbeatFrame(std::string_view data);
std::string encodeResultFrame(const ResultFrame& f);
ResultFrame decodeResultFrame(std::string_view data);

// --- socket-service client frames (campaign/server.h; codec v6) --------------
//
// The same length-framed transport, pointed at a socket instead of a pipe:
// a client connection carries exactly one campaign. Sequence:
//
//   client: ClientSubmitFrame          (spec travels inline, by value)
//   server: AcceptFrame | RejectFrame  (reject = backpressure; retryAfterMs)
//   server: ItemResultFrame*           (one per completed unit, as finished)
//   server: CampaignDoneFrame          (then the server closes the socket)
//
// The client reassembles the streamed ItemResultFrames with mergeShards,
// which is what makes the served result sameResults-bit-identical to a
// local run.

/// Client -> server: submit one campaign for dispatch.
struct ClientSubmitFrame {
  std::string clientName;  ///< free-form label for the server's ledger
  std::string spec;        ///< encodeCampaignSpec document, by value
  /// Stealable-unit granularity for this campaign (ShardPlanOptions::
  /// maxFragmentMutants); 0 = the server's default.
  std::uint64_t maxFragmentMutants = 0;
  /// Server-enforced wall-clock budget for the whole campaign, in
  /// milliseconds since admission; 0 = no deadline. An overdue campaign
  /// fails with a structured error instead of occupying the pool forever.
  std::uint64_t deadlineMs = 0;
  bool operator==(const ClientSubmitFrame&) const = default;
};

/// Server -> client: the campaign was admitted and queued.
struct AcceptFrame {
  std::uint64_t campaignId = 0;  ///< server-assigned, nonzero
  std::uint64_t specFnv = 0;     ///< fingerprint the server will dispatch under
  std::uint64_t unitCount = 0;   ///< stealable units planned (the merge's shardCount)
  bool operator==(const AcceptFrame&) const = default;
};

/// Server -> client: the campaign was NOT admitted. Backpressure is a
/// structured frame, never an unbounded buffer: retryAfterMs > 0 means the
/// admission queue was full and the client should retry later; 0 means the
/// submission itself was invalid (malformed spec) and a retry is pointless.
struct RejectFrame {
  std::string reason;
  std::uint64_t retryAfterMs = 0;
  bool operator==(const RejectFrame&) const = default;
};

/// Server -> client: one completed unit's ShardOutput, streamed as soon as
/// it finishes (shardIndex = taskIndex, shardCount = taskCount).
struct ItemResultFrame {
  std::uint64_t campaignId = 0;
  std::uint64_t taskIndex = 0;
  std::uint64_t taskCount = 0;
  ShardOutput output;
  bool operator==(const ItemResultFrame&) const;
};

/// Server -> client: the campaign left the scheduler. error is empty on
/// success; non-empty when dispatch gave up (a unit exhausted its attempt
/// budget). cancelled is set when the server dropped the campaign (client
/// disconnect) — such a frame is only ever seen in the server's ledger,
/// since the client is gone.
struct CampaignDoneFrame {
  std::uint64_t campaignId = 0;
  std::uint64_t unitsTotal = 0;
  std::uint64_t unitsCompleted = 0;
  std::uint64_t requeues = 0;  ///< crash-recovery re-queues attributed to this campaign
  bool cancelled = false;
  std::string error;
  /// Task indices of quarantined units: poison units whose attempt budget
  /// exhausted even after bisection isolated them down to an irreducible
  /// fragment. Their items carry structured per-item errors in the streamed
  /// outputs; the rest of the campaign completed normally. unitsTotal is
  /// the FINAL unit count (bisection appends tasks), so the client must
  /// normalize its streamed outputs' shardCount to it before merging.
  std::vector<std::uint64_t> quarantined;
  bool operator==(const CampaignDoneFrame&) const = default;
};

std::string encodeClientSubmitFrame(const ClientSubmitFrame& f);
ClientSubmitFrame decodeClientSubmitFrame(std::string_view data);
std::string encodeAcceptFrame(const AcceptFrame& f);
AcceptFrame decodeAcceptFrame(std::string_view data);
std::string encodeRejectFrame(const RejectFrame& f);
RejectFrame decodeRejectFrame(std::string_view data);
std::string encodeItemResultFrame(const ItemResultFrame& f);
ItemResultFrame decodeItemResultFrame(std::string_view data);
std::string encodeCampaignDoneFrame(const CampaignDoneFrame& f);
CampaignDoneFrame decodeCampaignDoneFrame(std::string_view data);

/// The codec tags of the frames ("dispatch-submit" etc.), as
/// util::peekDocumentTag reports them.
extern const char* const kSubmitFrameTag;
extern const char* const kStatusFrameTag;
extern const char* const kHeartbeatFrameTag;
extern const char* const kResultFrameTag;
extern const char* const kClientSubmitFrameTag;
extern const char* const kAcceptFrameTag;
extern const char* const kRejectFrameTag;
extern const char* const kItemResultFrameTag;
extern const char* const kCampaignDoneFrameTag;

}  // namespace xlv::campaign
