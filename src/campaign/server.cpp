#include "campaign/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <thread>

#include "campaign/serialize.h"
#include "util/codec.h"
#include "util/log.h"
#include "util/subprocess.h"

namespace xlv::campaign {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

void ignoreSigpipe() { ::signal(SIGPIPE, SIG_IGN); }

bool writeFdAll(int fd, std::string_view data) noexcept {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Connect to a server address (blocking fd). -1 with `error` set on failure.
int connectToServer(const std::string& socketPath, int tcpPort, std::string& error) {
  if (!socketPath.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path)) {
      error = "socket path too long: " + socketPath;
      return -1;
    }
    std::strncpy(addr.sun_path, socketPath.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      error = "cannot connect to " + socketPath + ": " + std::strerror(errno);
      if (fd >= 0) ::close(fd);
      return -1;
    }
    return fd;
  }
  if (tcpPort > 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(tcpPort));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      error = "cannot connect to 127.0.0.1:" + std::to_string(tcpPort) + ": " +
              std::strerror(errno);
      if (fd >= 0) ::close(fd);
      return -1;
    }
    return fd;
  }
  error = "no server address (need a socket path or TCP port)";
  return -1;
}

// --- server state ------------------------------------------------------------

struct ServerWorker {
  util::Subprocess proc;
  FrameReader reader;
  OutboundBuffer out;
  int generation = 0;
  int respawns = 0;
  bool ready = false;
  bool busy = false;
  bool retired = false;
  bool timedOut = false;
  std::uint64_t campaignId = 0;  ///< campaign of the in-flight unit
  std::size_t taskIndex = 0;     ///< its index in that campaign's unit list
  Clock::time_point lastBeat{};
};

struct ClientConn {
  int fd = -1;
  FrameReader reader;
  OutboundBuffer out;
  std::uint64_t campaignId = 0;  ///< 0 until a submission was admitted
  bool closing = false;  ///< server finished with it; close once flushed
  bool dead = false;
};

struct Campaign {
  std::uint64_t id = 0;
  std::string name;
  std::uint64_t specFnv = 0;
  std::string specPath;  ///< per-campaign spec handoff file
  TaskQueue queue;
  std::uint64_t taskCount = 0;
  std::uint64_t requeues = 0;
  std::uint64_t discarded = 0;
  /// Cancelled or errored: pending units left the scheduler, in-flight
  /// units drain with their results discarded, then the campaign finalizes.
  bool finishing = false;
  bool cancelled = false;
  std::string error;
  ClientConn* conn = nullptr;  ///< null once the client connection is gone
};

class Server {
 public:
  explicit Server(const ServeOptions& opt) : opt_(opt) {}
  ~Server() {
    for (auto& conn : conns_) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    if (listenFd_ >= 0) ::close(listenFd_);
    if (!boundPath_.empty()) ::unlink(boundPath_.c_str());
    for (Campaign* c : liveCampaigns()) removeSpecFile(*c);
  }

  ServeResult run();

 private:
  enum class Ref : unsigned char { Listener, WorkerOut, WorkerIn, Client };

  std::vector<Campaign*> liveCampaigns() {
    std::vector<Campaign*> out;
    for (auto& [id, c] : campaigns_) out.push_back(&c);
    return out;
  }

  void listen();
  bool spawnWorker(std::size_t i);
  void assignWork();
  void submitUnit(std::size_t wi, Campaign& c);
  void acceptClients();
  void onClientReadable(ClientConn& conn);
  void processClientFrames(ClientConn& conn);
  void admit(ClientConn& conn, const ClientSubmitFrame& f);
  void reject(ClientConn& conn, const std::string& reason, std::uint64_t retryMs);
  void flushConn(ClientConn& conn);
  void clientGone(ClientConn& conn);
  void closeConn(ClientConn& conn);
  void onWorkerReadable(std::size_t i);
  void drainWorker(std::size_t i);
  void handleWorkerFrame(std::size_t i, const std::string& doc);
  void onResult(std::size_t wi, ResultFrame rf);
  void requeueLostUnit(std::size_t wi, const std::string& reason);
  void workerDeath(std::size_t i, const char* reasonHint);
  void failCampaign(Campaign& c, const std::string& msg);
  void finishSuccess(Campaign& c);
  void finalize(Campaign& c);
  void sweepFinished();
  void removeSpecFile(const Campaign& c);
  void rrRemove(std::uint64_t id);
  std::size_t inFlight(std::uint64_t id) const;
  std::size_t totalPendingUnits() const;
  void heartbeatScan();
  void shutdownWorkers();

  ServeOptions opt_;
  ServeLedger ledger_;
  int listenFd_ = -1;
  std::string boundPath_;
  fs::path specDir_;
  std::vector<ServerWorker> workers_;
  std::vector<std::unique_ptr<ClientConn>> conns_;
  std::map<std::uint64_t, Campaign> campaigns_;
  std::vector<std::uint64_t> rr_;  ///< live campaign ids, admission order
  std::size_t rrCursor_ = 0;       ///< round-robin position in rr_
  std::uint64_t lastCampaignId_ = 0;
  std::uint64_t seqCounter_ = 0;
  std::uint64_t served_ = 0;  ///< admitted campaigns that left the scheduler
};

void Server::listen() {
  if (!opt_.socketPath.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt_.socketPath.size() >= sizeof(addr.sun_path)) {
      throw std::invalid_argument("serve: socket path too long: " + opt_.socketPath);
    }
    std::strncpy(addr.sun_path, opt_.socketPath.c_str(), sizeof(addr.sun_path) - 1);
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
      throw DispatchError(std::string("socket failed: ") + std::strerror(errno));
    }
    ::unlink(opt_.socketPath.c_str());  // a stale path from a crashed server
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(listenFd_, 64) != 0) {
      throw DispatchError("cannot listen on " + opt_.socketPath + ": " +
                          std::strerror(errno));
    }
    boundPath_ = opt_.socketPath;
  } else if (opt_.tcpPort > 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opt_.tcpPort));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, never 0.0.0.0
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
      throw DispatchError(std::string("socket failed: ") + std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(listenFd_, 64) != 0) {
      throw DispatchError("cannot listen on 127.0.0.1:" + std::to_string(opt_.tcpPort) +
                          ": " + std::strerror(errno));
    }
  } else {
    throw std::invalid_argument("serve: a socketPath or tcpPort listen address is required");
  }
  util::setNonBlocking(listenFd_);
}

bool Server::spawnWorker(std::size_t i) {
  ServerWorker& s = workers_[i];
  std::vector<std::string> argv = opt_.workerCommand;
  argv.push_back("--index");
  argv.push_back(std::to_string(i));
  argv.push_back("--generation");
  argv.push_back(std::to_string(s.generation));
  argv.push_back("--heartbeat-ms");
  argv.push_back(std::to_string(opt_.heartbeatIntervalMs));
  const util::SubprocessEnv env = {
      {"XLV_WORKER_INDEX", std::to_string(i)},
      {"XLV_WORKER_GENERATION", std::to_string(s.generation)},
  };
  s.proc = util::Subprocess::spawn(argv, env);
  s.reader = FrameReader{};
  s.out = OutboundBuffer{};
  s.ready = false;
  s.busy = false;
  s.timedOut = false;
  if (!s.proc.started()) {
    s.retired = true;
    XLV_ERROR("campaignd") << "serve worker " << i << ": spawn failed";
    return false;
  }
  util::setNonBlocking(s.proc.stdinFd());
  util::setNonBlocking(s.proc.stdoutFd());
  s.lastBeat = Clock::now();
  ++ledger_.workersSpawned;
  return true;
}

void Server::assignWork() {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    ServerWorker& s = workers_[i];
    if (s.retired || !s.ready || s.busy) continue;
    if (rr_.empty()) return;
    // Round-robin ACROSS campaigns (each idle worker serves the next
    // campaign in admission order that still has work), heaviest-first
    // WITHIN one (TaskQueue::claim is LPT). That is the fairness contract:
    // a small campaign never starves behind a huge one's unit backlog.
    bool assigned = false;
    const std::size_t n = rr_.size();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t pos = (rrCursor_ + k) % n;
      auto it = campaigns_.find(rr_[pos]);
      if (it == campaigns_.end() || !it->second.queue.hasPending()) continue;
      rrCursor_ = (pos + 1) % n;
      submitUnit(i, it->second);
      assigned = true;
      break;
    }
    if (!assigned) return;  // nothing pending anywhere
  }
}

void Server::submitUnit(std::size_t wi, Campaign& c) {
  ServerWorker& s = workers_[wi];
  const DispatchTask& t = c.queue.claim();
  SubmitFrame submit;
  submit.specFnv = c.specFnv;
  submit.campaignId = c.id;
  submit.seq = ++seqCounter_;
  submit.taskIndex = t.index;
  submit.taskCount = c.taskCount;
  submit.attempt = t.attempts - 1;
  submit.unit = t.unit;
  submit.specPath = c.specPath;
  s.ready = false;
  s.busy = true;
  s.campaignId = c.id;
  s.taskIndex = t.index;
  s.lastBeat = Clock::now();
  s.out.enqueue(frameWire(encodeSubmitFrame(submit)));
  if (!s.out.flushTo(s.proc.stdinFd())) {
    workerDeath(wi, "submit-write-failed");
    return;
  }
  ++ledger_.submissions;
}

void Server::acceptClients() {
  for (;;) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained the backlog
    }
    util::setNonBlocking(fd);
    auto conn = std::make_unique<ClientConn>();
    conn->fd = fd;
    conns_.push_back(std::move(conn));
  }
}

void Server::onClientReadable(ClientConn& conn) {
  bool eof = false;
  char buf[65536];
  while (!conn.dead) {
    const ssize_t n = ::read(conn.fd, buf, sizeof buf);
    if (n > 0) {
      conn.reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    eof = true;  // clean close and read errors both mean: this client is gone
    break;
  }
  if (!conn.dead) processClientFrames(conn);
  if (eof && !conn.dead) clientGone(conn);
}

void Server::processClientFrames(ClientConn& conn) {
  std::string doc;
  try {
    while (!conn.dead && conn.reader.next(doc)) {
      if (conn.closing) continue;  // trailing bytes after a reject: ignore
      if (conn.campaignId == 0) {
        if (util::peekDocumentTag(doc) != kClientSubmitFrameTag) {
          throw util::DecodeError("expected a client-submit frame");
        }
        admit(conn, decodeClientSubmitFrame(doc));
      } else {
        // One connection carries exactly one campaign; anything after the
        // submission is a protocol violation.
        throw util::DecodeError("unexpected frame after the submission");
      }
    }
  } catch (const util::DecodeError& e) {
    XLV_WARN("campaignd") << "client protocol error: " << e.what();
    clientGone(conn);
  }
}

void Server::admit(ClientConn& conn, const ClientSubmitFrame& f) {
  CampaignSpec spec;
  DispatchUnitPlan plan;
  try {
    spec = decodeCampaignSpec(f.spec);
    const std::size_t frag =
        f.maxFragmentMutants > 0 ? static_cast<std::size_t>(f.maxFragmentMutants)
                                 : opt_.maxFragmentMutants;
    plan = planDispatchUnits(spec, frag);
  } catch (const std::exception& e) {
    // retryAfterMs = 0: the submission itself is broken, retrying is
    // pointless (backpressure rejects below DO carry a retry hint).
    reject(conn, std::string("malformed submission: ") + e.what(), 0);
    return;
  }
  if (campaigns_.size() >= opt_.maxCampaigns) {
    reject(conn, "campaign limit reached (" + std::to_string(opt_.maxCampaigns) + ")",
           opt_.rejectRetryAfterMs);
    return;
  }
  const std::size_t queued = totalPendingUnits();
  // An idle server admits anything — a single campaign larger than the whole
  // pending budget must still be servable; the bound protects a BUSY server
  // from buffering without limit.
  if (queued > 0 && queued + plan.units.size() > opt_.maxPendingUnits) {
    reject(conn,
           "admission queue full (" + std::to_string(queued) + " units pending)",
           opt_.rejectRetryAfterMs);
    return;
  }

  const std::uint64_t id = ++lastCampaignId_;
  const fs::path specPath =
      specDir_ / ("xlv-campaignd-serve-" + std::to_string(::getpid()) + "-" +
                  std::to_string(id) + ".xlv");
  {
    std::ofstream out(specPath, std::ios::binary | std::ios::trunc);
    out << encodeCampaignSpec(spec);  // canonical bytes: fnv-checkable by workers
    if (!out) {
      reject(conn, "server cannot stage the spec handoff file", opt_.rejectRetryAfterMs);
      return;
    }
  }

  Campaign c;
  c.id = id;
  c.name = f.clientName;
  c.specFnv = plan.specFnv;
  c.specPath = specPath.string();
  c.queue = TaskQueue(plan);
  c.taskCount = c.queue.taskCount();
  c.conn = &conn;
  conn.campaignId = id;
  auto [it, inserted] = campaigns_.emplace(id, std::move(c));
  (void)inserted;
  rr_.push_back(id);
  ++ledger_.campaignsAccepted;
  XLV_INFO("campaignd") << "campaign " << id << " ('" << f.clientName << "') admitted: "
                        << it->second.taskCount << " units";

  AcceptFrame accept;
  accept.campaignId = id;
  accept.specFnv = plan.specFnv;
  accept.unitCount = it->second.taskCount;
  conn.out.enqueue(frameWire(encodeAcceptFrame(accept)));
  flushConn(conn);

  auto again = campaigns_.find(id);
  if (again != campaigns_.end() && !again->second.finishing &&
      again->second.taskCount == 0) {
    finishSuccess(again->second);  // empty spec: done before it began
  }
}

void Server::reject(ClientConn& conn, const std::string& reason, std::uint64_t retryMs) {
  ++ledger_.campaignsRejected;
  XLV_WARN("campaignd") << "submission rejected: " << reason;
  RejectFrame rj;
  rj.reason = reason;
  rj.retryAfterMs = retryMs;
  conn.out.enqueue(frameWire(encodeRejectFrame(rj)));
  conn.closing = true;
  flushConn(conn);
}

void Server::flushConn(ClientConn& conn) {
  if (conn.dead || conn.fd < 0) return;
  if (!conn.out.flushTo(conn.fd)) {
    clientGone(conn);
    return;
  }
  if (conn.closing && conn.out.empty()) closeConn(conn);
}

void Server::clientGone(ClientConn& conn) {
  if (conn.dead) return;
  if (conn.campaignId != 0) {
    auto it = campaigns_.find(conn.campaignId);
    if (it != campaigns_.end() && !it->second.finishing) {
      Campaign& c = it->second;
      c.cancelled = true;
      c.finishing = true;
      rrRemove(c.id);
      XLV_WARN("campaignd") << "campaign " << c.id << " ('" << c.name
                            << "') cancelled: client disconnected with "
                            << c.queue.pendingCount() << " units pending, "
                            << inFlight(c.id) << " in flight";
    }
  }
  closeConn(conn);
}

void Server::closeConn(ClientConn& conn) {
  if (conn.fd >= 0) {
    ::close(conn.fd);
    conn.fd = -1;
  }
  conn.dead = true;
  if (conn.campaignId != 0) {
    auto it = campaigns_.find(conn.campaignId);
    if (it != campaigns_.end()) it->second.conn = nullptr;
  }
}

void Server::onWorkerReadable(std::size_t i) {
  ServerWorker& s = workers_[i];
  if (s.retired) return;
  char buf[65536];
  const ssize_t n = ::read(s.proc.stdoutFd(), buf, sizeof buf);
  if (n > 0) {
    s.reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    try {
      drainWorker(i);
    } catch (const util::DecodeError& e) {
      XLV_ERROR("campaignd") << "serve worker " << i << ": corrupt stream: " << e.what();
      s.proc.kill(SIGKILL);
      workerDeath(i, "protocol-error");
    }
  } else if (n == 0) {
    workerDeath(i, nullptr);
  } else if (errno != EINTR && errno != EAGAIN) {
    workerDeath(i, nullptr);
  }
}

void Server::drainWorker(std::size_t i) {
  std::string doc;
  while (workers_[i].reader.next(doc)) handleWorkerFrame(i, doc);
}

void Server::handleWorkerFrame(std::size_t i, const std::string& doc) {
  ServerWorker& s = workers_[i];
  const std::string tag = util::peekDocumentTag(doc);
  if (tag == kStatusFrameTag) {
    const StatusFrame st = decodeStatusFrame(doc);
    s.lastBeat = Clock::now();
    if (st.state == "ready") s.ready = true;
    return;
  }
  if (tag == kHeartbeatFrameTag) {
    decodeHeartbeatFrame(doc);
    s.lastBeat = Clock::now();
    ++ledger_.heartbeats;
    return;
  }
  if (tag == kResultFrameTag) {
    s.lastBeat = Clock::now();
    onResult(i, decodeResultFrame(doc));
    return;
  }
  throw util::DecodeError("unexpected frame '" + tag + "' from a worker");
}

void Server::onResult(std::size_t wi, ResultFrame rf) {
  ServerWorker& s = workers_[wi];
  auto it = campaigns_.find(rf.campaignId);
  if (it != campaigns_.end() && rf.taskIndex >= it->second.taskCount) {
    throw util::DecodeError("result for unknown task " + std::to_string(rf.taskIndex) +
                            " of campaign " + std::to_string(rf.campaignId));
  }
  if (s.busy && s.campaignId == rf.campaignId && s.taskIndex == rf.taskIndex) {
    s.busy = false;
  }
  if (it == campaigns_.end()) {
    // The owning campaign already finalized (cancelled and drained): spent
    // work with nowhere to go.
    ++ledger_.discardedResults;
    return;
  }
  Campaign& c = it->second;
  if (c.finishing) {
    ++c.discarded;
    ++ledger_.discardedResults;
    return;
  }
  if (!c.queue.complete(rf.taskIndex)) {
    // A retry raced its predecessor's drained result; copies are
    // bit-identical by construction, dropping one is safe.
    ++ledger_.duplicateResults;
    return;
  }
  ItemResultFrame ir;
  ir.campaignId = c.id;
  ir.taskIndex = rf.taskIndex;
  ir.taskCount = c.taskCount;
  ir.output = std::move(rf.output);
  if (c.conn != nullptr && !c.conn->dead) {
    c.conn->out.enqueue(frameWire(encodeItemResultFrame(ir)));
    flushConn(*c.conn);  // may cancel c (client write failure sets finishing)
  }
  if (!c.finishing && c.queue.done()) finishSuccess(c);
}

void Server::requeueLostUnit(std::size_t wi, const std::string& reason) {
  ServerWorker& s = workers_[wi];
  if (!s.busy) return;
  s.busy = false;
  auto it = campaigns_.find(s.campaignId);
  if (it == campaigns_.end()) return;
  Campaign& c = it->second;
  if (c.finishing) return;  // cancelled campaigns do not re-queue
  if (c.queue.isCompleted(s.taskIndex)) return;  // its result was drained in time
  const DispatchTask& t = c.queue.task(s.taskIndex);
  if (static_cast<int>(t.attempts) >= opt_.maxTaskAttempts) {
    // An unrunnable unit fails ITS campaign, never the server.
    failCampaign(c, "task " + std::to_string(t.index) + " (item " +
                        std::to_string(t.unit.taskId) + ") lost after " +
                        std::to_string(t.attempts) + " attempts (last: " + reason + ")");
    return;
  }
  c.queue.requeue(s.taskIndex);
  ++c.requeues;
  XLV_WARN("campaignd") << "re-queued task " << t.index << " of campaign " << c.id
                        << " (attempt " << t.attempts << " lost to worker " << wi
                        << ": " << reason << ")";
}

void Server::workerDeath(std::size_t i, const char* reasonHint) {
  ServerWorker& s = workers_[i];
  try {
    drainWorker(i);  // salvage results already in the pipe
  } catch (const util::DecodeError&) {
    // A crash can truncate mid-frame; the re-queue below recovers the rest.
  }
  s.proc.wait();
  const std::string reason = reasonHint != nullptr ? reasonHint
                             : s.timedOut          ? "heartbeat-timeout"
                             : s.proc.termSignal() != 0 ? "worker-signal"
                                                        : "worker-exit";
  XLV_WARN("campaignd") << "serve worker " << i << " gen " << s.generation << " died ("
                        << reason << ", exit=" << s.proc.exitCode()
                        << ", signal=" << s.proc.termSignal() << ")";
  requeueLostUnit(i, reason);
  s.ready = false;
  if (s.respawns < opt_.maxWorkerRespawns) {
    ++s.respawns;
    ++s.generation;
    ++ledger_.workerRespawns;
    spawnWorker(i);
  } else {
    s.retired = true;
  }
  const bool anyAlive = std::any_of(workers_.begin(), workers_.end(),
                                    [](const ServerWorker& w) { return !w.retired; });
  if (!anyAlive && !campaigns_.empty()) {
    throw DispatchError("all serve workers lost with " +
                        std::to_string(campaigns_.size()) + " campaigns live");
  }
}

void Server::failCampaign(Campaign& c, const std::string& msg) {
  XLV_ERROR("campaignd") << "campaign " << c.id << " ('" << c.name << "') failed: " << msg;
  c.error = msg;
  c.finishing = true;
  rrRemove(c.id);
  if (c.conn != nullptr && !c.conn->dead) {
    CampaignDoneFrame done;
    done.campaignId = c.id;
    done.unitsTotal = c.taskCount;
    done.unitsCompleted = c.queue.completedCount();
    done.requeues = c.requeues;
    done.cancelled = false;
    done.error = msg;
    c.conn->out.enqueue(frameWire(encodeCampaignDoneFrame(done)));
    c.conn->closing = true;
    flushConn(*c.conn);
  }
  // Finalized by sweepFinished() once in-flight units drained.
}

void Server::finishSuccess(Campaign& c) {
  CampaignDoneFrame done;
  done.campaignId = c.id;
  done.unitsTotal = c.taskCount;
  done.unitsCompleted = c.queue.completedCount();
  done.requeues = c.requeues;
  ClientConn* conn = c.conn;
  if (conn != nullptr && !conn->dead) {
    conn->out.enqueue(frameWire(encodeCampaignDoneFrame(done)));
    conn->closing = true;
  }
  // Finalize BEFORE the flush: the campaign has left the scheduler either
  // way, and a write failure during the flush must not re-cancel it.
  finalize(c);
  if (conn != nullptr && !conn->dead) flushConn(*conn);
}

void Server::finalize(Campaign& c) {
  CampaignLedgerEntry e;
  e.campaignId = c.id;
  e.name = c.name;
  e.unitsTotal = c.taskCount;
  e.unitsCompleted = c.queue.completedCount();
  e.requeues = c.requeues;
  e.discardedResults = c.discarded;
  e.cancelled = c.cancelled;
  e.error = c.error;
  ledger_.campaigns.push_back(e);
  if (c.cancelled) {
    ++ledger_.campaignsCancelled;
  } else {
    ++ledger_.campaignsCompleted;
  }
  XLV_INFO("campaignd") << "campaign " << c.id << " ('" << c.name << "') finished: "
                        << e.unitsCompleted << "/" << e.unitsTotal << " units, "
                        << e.requeues << " re-queues"
                        << (c.cancelled ? " (cancelled)" : "");
  removeSpecFile(c);
  rrRemove(c.id);
  if (c.conn != nullptr) c.conn->campaignId = 0;
  const std::uint64_t id = c.id;
  campaigns_.erase(id);  // `c` is dangling from here on
  ++served_;
}

void Server::sweepFinished() {
  std::vector<std::uint64_t> doneIds;
  for (auto& [id, c] : campaigns_) {
    if (c.finishing && inFlight(id) == 0) doneIds.push_back(id);
  }
  for (const std::uint64_t id : doneIds) {
    auto it = campaigns_.find(id);
    if (it != campaigns_.end()) finalize(it->second);
  }
}

void Server::removeSpecFile(const Campaign& c) {
  if (c.specPath.empty()) return;
  std::error_code ec;
  fs::remove(c.specPath, ec);
}

void Server::rrRemove(std::uint64_t id) {
  const auto it = std::find(rr_.begin(), rr_.end(), id);
  if (it == rr_.end()) return;
  const std::size_t pos = static_cast<std::size_t>(it - rr_.begin());
  rr_.erase(it);
  if (rr_.empty()) {
    rrCursor_ = 0;
  } else {
    if (pos < rrCursor_) --rrCursor_;
    rrCursor_ %= rr_.size();
  }
}

std::size_t Server::inFlight(std::uint64_t id) const {
  std::size_t n = 0;
  for (const ServerWorker& s : workers_) {
    if (s.busy && s.campaignId == id) ++n;
  }
  return n;
}

std::size_t Server::totalPendingUnits() const {
  std::size_t n = 0;
  for (const auto& [id, c] : campaigns_) {
    if (!c.finishing) n += c.queue.pendingCount();
  }
  return n;
}

void Server::heartbeatScan() {
  const auto now = Clock::now();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    ServerWorker& s = workers_[i];
    if (s.retired || !s.busy || s.timedOut) continue;
    const auto silentMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - s.lastBeat).count();
    if (silentMs > opt_.heartbeatTimeoutMs) {
      XLV_WARN("campaignd") << "serve worker " << i << " silent for " << silentMs
                            << " ms on campaign " << s.campaignId << " task "
                            << s.taskIndex << "; killing";
      s.timedOut = true;
      ++ledger_.workersKilled;
      s.proc.kill(SIGKILL);
    }
  }
}

void Server::shutdownWorkers() {
  for (ServerWorker& s : workers_) {
    if (s.retired || !s.proc.started()) continue;
    SubmitFrame bye;
    bye.seq = ++seqCounter_;
    bye.shutdown = true;
    s.out.enqueue(frameWire(encodeSubmitFrame(bye)));
    const auto deadline = Clock::now() + std::chrono::milliseconds(200);
    while (!s.out.empty() && Clock::now() < deadline) {
      if (!s.out.flushTo(s.proc.stdinFd())) break;
      if (!s.out.empty()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    s.proc.closeStdin();
  }
  const auto grace = Clock::now() + std::chrono::seconds(2);
  for (ServerWorker& s : workers_) {
    if (s.retired || !s.proc.started()) continue;
    while (s.proc.running() && Clock::now() < grace) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (s.proc.running()) s.proc.kill(SIGKILL);
    s.proc.wait();
  }
}

ServeResult Server::run() {
  if (opt_.workerCommand.empty()) {
    throw std::invalid_argument("serve: workerCommand must not be empty");
  }
  if (opt_.heartbeatIntervalMs <= 0 || opt_.heartbeatTimeoutMs <= 0) {
    throw std::invalid_argument("serve: heartbeat interval/timeout must be > 0");
  }
  if (opt_.maxTaskAttempts < 1) {
    throw std::invalid_argument("serve: maxTaskAttempts must be >= 1");
  }
  ignoreSigpipe();

  specDir_ = opt_.specDir.empty() ? fs::temp_directory_path() : fs::path(opt_.specDir);
  std::error_code ec;
  fs::create_directories(specDir_, ec);

  listen();

  const int workerCount = resolveWorkerCount(opt_.workers);
  workers_.resize(static_cast<std::size_t>(workerCount));
  std::size_t live = 0;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (spawnWorker(i)) ++live;
  }
  if (live == 0) throw DispatchError("could not spawn any serve worker");
  XLV_INFO("campaignd") << "serving on "
                        << (!boundPath_.empty()
                                ? boundPath_
                                : "127.0.0.1:" + std::to_string(opt_.tcpPort))
                        << " with " << live << " workers";

  struct PollRef {
    Ref kind;
    std::size_t idx;
  };

  for (;;) {
    if (opt_.maxCampaignsServed > 0 && served_ >= opt_.maxCampaignsServed &&
        campaigns_.empty()) {
      break;
    }

    assignWork();

    std::vector<pollfd> fds;
    std::vector<PollRef> refs;
    fds.push_back(pollfd{listenFd_, POLLIN, 0});
    refs.push_back({Ref::Listener, 0});
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const ServerWorker& s = workers_[i];
      if (s.retired || !s.proc.started()) continue;
      fds.push_back(pollfd{s.proc.stdoutFd(), POLLIN, 0});
      refs.push_back({Ref::WorkerOut, i});
      if (!s.out.empty() && s.proc.stdinFd() >= 0) {
        fds.push_back(pollfd{s.proc.stdinFd(), POLLOUT, 0});
        refs.push_back({Ref::WorkerIn, i});
      }
    }
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      const ClientConn& conn = *conns_[i];
      if (conn.dead || conn.fd < 0) continue;
      const short events =
          static_cast<short>(conn.out.empty() ? POLLIN : (POLLIN | POLLOUT));
      fds.push_back(pollfd{conn.fd, events, 0});
      refs.push_back({Ref::Client, i});
    }

    const int pollMs = std::clamp(opt_.heartbeatTimeoutMs / 4, 10, 100);
    const int got = ::poll(fds.data(), fds.size(), pollMs);
    if (got < 0 && errno != EINTR) {
      throw DispatchError(std::string("poll failed: ") + std::strerror(errno));
    }

    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents == 0) continue;
      const PollRef ref = refs[k];
      switch (ref.kind) {
        case Ref::Listener:
          if (fds[k].revents & POLLIN) acceptClients();
          break;
        case Ref::WorkerOut:
          if (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) onWorkerReadable(ref.idx);
          break;
        case Ref::WorkerIn: {
          ServerWorker& s = workers_[ref.idx];
          if (s.retired) break;
          if (fds[k].revents & (POLLOUT | POLLHUP | POLLERR)) {
            if (!s.out.flushTo(s.proc.stdinFd())) {
              workerDeath(ref.idx, "submit-write-failed");
            }
          }
          break;
        }
        case Ref::Client: {
          ClientConn& conn = *conns_[ref.idx];
          if (conn.dead) break;
          if (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) onClientReadable(conn);
          if (!conn.dead && (fds[k].revents & POLLOUT)) flushConn(conn);
          break;
        }
      }
    }

    heartbeatScan();
    sweepFinished();
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::unique_ptr<ClientConn>& c) {
                                  return c->dead;
                                }),
                 conns_.end());
  }

  shutdownWorkers();
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  if (!boundPath_.empty()) {
    ::unlink(boundPath_.c_str());
    boundPath_.clear();
  }
  XLV_INFO("campaignd") << "served " << served_ << " campaigns ("
                        << ledger_.campaignsCompleted << " completed, "
                        << ledger_.campaignsCancelled << " cancelled, "
                        << ledger_.campaignsRejected << " rejected)";
  return ServeResult{ledger_};
}

}  // namespace

ServeResult runCampaignServer(const ServeOptions& opt) { return Server(opt).run(); }

// --- client ------------------------------------------------------------------

SubmitOutcome submitCampaign(const CampaignSpec& spec, const SubmitOptions& opt) {
  SubmitOutcome out;
  ignoreSigpipe();
  const int fd = connectToServer(opt.socketPath, opt.tcpPort, out.error);
  if (fd < 0) return out;

  ClientSubmitFrame submit;
  submit.clientName = opt.clientName;
  submit.spec = encodeCampaignSpec(spec);
  submit.maxFragmentMutants = static_cast<std::uint64_t>(opt.maxFragmentMutants);
  if (!writeFdAll(fd, frameWire(encodeClientSubmitFrame(submit)))) {
    out.error = std::string("submit write failed: ") + std::strerror(errno);
    ::close(fd);
    return out;
  }

  FrameReader reader;
  std::string doc;
  long items = 0;
  auto disconnectDue = [&] {
    return opt.disconnectAfterItems >= 0 && items >= opt.disconnectAfterItems &&
           out.accepted;
  };
  while (out.error.empty() && !out.done && !out.rejected && !out.disconnected) {
    int readErrno = 0;
    FrameRead got = FrameRead::Eof;
    try {
      got = readFrameBlocking(fd, reader, doc, &readErrno);
    } catch (const util::DecodeError& e) {
      out.error = std::string("corrupt stream from server: ") + e.what();
      break;
    }
    if (got == FrameRead::Eof) {
      out.error = "server closed the connection mid-campaign";
      break;
    }
    if (got == FrameRead::Error) {
      out.error = std::string("socket read failed: ") + std::strerror(readErrno);
      break;
    }
    try {
      const std::string tag = util::peekDocumentTag(doc);
      if (tag == kAcceptFrameTag) {
        const AcceptFrame accept = decodeAcceptFrame(doc);
        out.accepted = true;
        out.campaignId = accept.campaignId;
        out.unitCount = accept.unitCount;
      } else if (tag == kRejectFrameTag) {
        const RejectFrame rj = decodeRejectFrame(doc);
        out.rejected = true;
        out.rejectReason = rj.reason;
        out.retryAfterMs = rj.retryAfterMs;
      } else if (tag == kItemResultFrameTag) {
        ItemResultFrame ir = decodeItemResultFrame(doc);
        out.outputs.push_back(std::move(ir.output));
        ++items;
      } else if (tag == kCampaignDoneFrameTag) {
        const CampaignDoneFrame done = decodeCampaignDoneFrame(doc);
        out.done = true;
        if (!done.error.empty()) {
          out.error = done.error;
        } else if (done.cancelled) {
          out.error = "campaign cancelled by the server";
        }
      } else {
        out.error = "unexpected frame '" + tag + "' from the server";
      }
    } catch (const util::DecodeError& e) {
      out.error = std::string("bad frame from server: ") + e.what();
    }
    if (out.error.empty() && disconnectDue()) out.disconnected = true;
  }
  ::close(fd);

  if (out.done && out.error.empty()) {
    try {
      out.result = mergeShards(spec, out.outputs);
    } catch (const std::exception& e) {
      out.error = std::string("merge failed: ") + e.what();
    }
  }
  return out;
}

// --- ledger JSON -------------------------------------------------------------

std::string encodeServeLedgerJson(const ServeLedger& ledger) {
  std::string out = "{\n";
  auto num = [&](const char* key, std::uint64_t v) {
    out += "  \"";
    out += key;
    out += "\": ";
    out += std::to_string(v);
    out += ",\n";
  };
  auto escape = [](const std::string& s) {
    std::string r;
    for (char ch : s) {
      if (ch == '"' || ch == '\\') {
        r += '\\';
        r += ch;
      } else if (ch == '\n') {
        r += "\\n";
      } else {
        r += ch;
      }
    }
    return r;
  };
  num("campaignsAccepted", ledger.campaignsAccepted);
  num("campaignsRejected", ledger.campaignsRejected);
  num("campaignsCompleted", ledger.campaignsCompleted);
  num("campaignsCancelled", ledger.campaignsCancelled);
  num("submissions", ledger.submissions);
  num("duplicateResults", ledger.duplicateResults);
  num("discardedResults", ledger.discardedResults);
  num("workersSpawned", ledger.workersSpawned);
  num("workerRespawns", ledger.workerRespawns);
  num("workersKilled", ledger.workersKilled);
  num("heartbeats", ledger.heartbeats);
  out += "  \"campaigns\": [";
  for (std::size_t i = 0; i < ledger.campaigns.size(); ++i) {
    const CampaignLedgerEntry& c = ledger.campaigns[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"campaignId\": " + std::to_string(c.campaignId);
    out += ", \"name\": \"" + escape(c.name) + "\"";
    out += ", \"unitsTotal\": " + std::to_string(c.unitsTotal);
    out += ", \"unitsCompleted\": " + std::to_string(c.unitsCompleted);
    out += ", \"requeues\": " + std::to_string(c.requeues);
    out += ", \"discardedResults\": " + std::to_string(c.discardedResults);
    out += std::string(", \"cancelled\": ") + (c.cancelled ? "true" : "false");
    out += ", \"error\": \"" + escape(c.error) + "\"";
    out += "}";
  }
  out += ledger.campaigns.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace xlv::campaign
