#include "campaign/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <thread>

#include "campaign/serialize.h"
#include "util/codec.h"
#include "util/fault_point.h"
#include "util/log.h"
#include "util/prng.h"
#include "util/subprocess.h"

namespace xlv::campaign {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

void ignoreSigpipe() { ::signal(SIGPIPE, SIG_IGN); }

/// Self-pipe for graceful drain: the SIGTERM/SIGINT handler only writes one
/// byte here, and the poll loop — the single place allowed to touch server
/// state — reads it and starts the drain. Async-signal-safe by construction.
int gDrainPipeWrite = -1;

void onDrainSignal(int) {
  const int saved = errno;
  if (gDrainPipeWrite >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(gDrainPipeWrite, &byte, 1);
  }
  errno = saved;
}

bool writeFdAll(int fd, std::string_view data) noexcept {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Connect to a server address (blocking fd). -1 with `error` set on failure.
int connectToServer(const std::string& socketPath, int tcpPort, std::string& error) {
  if (!socketPath.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path)) {
      error = "socket path too long: " + socketPath;
      return -1;
    }
    std::strncpy(addr.sun_path, socketPath.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      error = "cannot connect to " + socketPath + ": " + std::strerror(errno);
      if (fd >= 0) ::close(fd);
      return -1;
    }
    return fd;
  }
  if (tcpPort > 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(tcpPort));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      error = "cannot connect to 127.0.0.1:" + std::to_string(tcpPort) + ": " +
              std::strerror(errno);
      if (fd >= 0) ::close(fd);
      return -1;
    }
    return fd;
  }
  error = "no server address (need a socket path or TCP port)";
  return -1;
}

// --- server state ------------------------------------------------------------

struct ServerWorker {
  util::Subprocess proc;
  FrameReader reader;
  OutboundBuffer out;
  int generation = 0;
  int respawns = 0;
  bool ready = false;
  bool busy = false;
  bool retired = false;
  bool timedOut = false;
  std::uint64_t campaignId = 0;  ///< campaign of the in-flight unit
  std::size_t taskIndex = 0;     ///< its index in that campaign's unit list
  Clock::time_point lastBeat{};
};

struct ClientConn {
  int fd = -1;
  FrameReader reader;
  OutboundBuffer out;
  std::uint64_t campaignId = 0;  ///< 0 until a submission was admitted
  bool closing = false;  ///< server finished with it; close once flushed
  bool dead = false;
  Clock::time_point openedAt{};  ///< read-timeout base for half-open clients
};

struct Campaign {
  std::uint64_t id = 0;
  std::string name;
  std::uint64_t specFnv = 0;
  std::string specPath;  ///< per-campaign spec handoff file
  TaskQueue queue;
  std::uint64_t taskCount = 0;
  std::uint64_t requeues = 0;
  std::uint64_t discarded = 0;
  /// Cancelled or errored: pending units left the scheduler, in-flight
  /// units drain with their results discarded, then the campaign finalizes.
  bool finishing = false;
  bool cancelled = false;
  std::string error;
  ClientConn* conn = nullptr;  ///< null once the client connection is gone
  std::uint64_t bisections = 0;
  std::vector<std::uint64_t> quarantined;  ///< retired irreducible task indices
  std::uint64_t deadlineMs = 0;            ///< 0 = no deadline
  Clock::time_point deadlineAt{};
  bool drained = false;  ///< was live when a drain began
};

class Server {
 public:
  explicit Server(const ServeOptions& opt) : opt_(opt) {}
  ~Server() {
    for (auto& conn : conns_) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    if (listenFd_ >= 0) ::close(listenFd_);
    if (!boundPath_.empty()) ::unlink(boundPath_.c_str());
    for (Campaign* c : liveCampaigns()) removeSpecFile(*c);
    if (drainWriteFd_ >= 0) {
      gDrainPipeWrite = -1;
      ::close(drainWriteFd_);
    }
    if (drainReadFd_ >= 0) ::close(drainReadFd_);
  }

  ServeResult run();

 private:
  enum class Ref : unsigned char { Listener, WorkerOut, WorkerIn, Client, DrainPipe };

  std::vector<Campaign*> liveCampaigns() {
    std::vector<Campaign*> out;
    for (auto& [id, c] : campaigns_) out.push_back(&c);
    return out;
  }

  void listen();
  bool spawnWorker(std::size_t i);
  void assignWork();
  void submitUnit(std::size_t wi, Campaign& c);
  void acceptClients();
  void onClientReadable(ClientConn& conn);
  void processClientFrames(ClientConn& conn);
  void admit(ClientConn& conn, const ClientSubmitFrame& f);
  void reject(ClientConn& conn, const std::string& reason, std::uint64_t retryMs);
  void flushConn(ClientConn& conn);
  void clientGone(ClientConn& conn);
  void closeConn(ClientConn& conn);
  void onWorkerReadable(std::size_t i);
  void drainWorker(std::size_t i);
  void handleWorkerFrame(std::size_t i, const std::string& doc);
  void onResult(std::size_t wi, ResultFrame rf);
  void streamOutput(Campaign& c, std::size_t taskIndex, ShardOutput output);
  void quarantineOrBisect(Campaign& c, std::size_t taskIndex, const std::string& reason);
  void requeueLostUnit(std::size_t wi, const std::string& reason);
  void workerDeath(std::size_t i, const char* reasonHint);
  void failCampaign(Campaign& c, const std::string& msg);
  void finishSuccess(Campaign& c);
  void finalize(Campaign& c);
  void sweepFinished();
  void removeSpecFile(const Campaign& c);
  void rrRemove(std::uint64_t id);
  std::size_t inFlight(std::uint64_t id) const;
  std::size_t totalPendingUnits() const;
  void heartbeatScan();
  void deadlineScan();
  void clientReadScan();
  void onDrainRequest();
  void flushClosingConns();
  void shutdownWorkers();

  ServeOptions opt_;
  ServeLedger ledger_;
  int listenFd_ = -1;
  std::string boundPath_;
  fs::path specDir_;
  std::vector<ServerWorker> workers_;
  std::vector<std::unique_ptr<ClientConn>> conns_;
  std::map<std::uint64_t, Campaign> campaigns_;
  std::vector<std::uint64_t> rr_;  ///< live campaign ids, admission order
  std::size_t rrCursor_ = 0;       ///< round-robin position in rr_
  std::uint64_t lastCampaignId_ = 0;
  std::uint64_t seqCounter_ = 0;
  std::uint64_t served_ = 0;  ///< admitted campaigns that left the scheduler
  int drainReadFd_ = -1;   ///< self-pipe read end (in the poll set)
  int drainWriteFd_ = -1;  ///< self-pipe write end (signal handler's target)
  bool draining_ = false;  ///< stop admitting; exit once live campaigns finish
  bool drainHard_ = false;  ///< second signal: stop now
};

void Server::listen() {
  if (!opt_.socketPath.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt_.socketPath.size() >= sizeof(addr.sun_path)) {
      throw std::invalid_argument("serve: socket path too long: " + opt_.socketPath);
    }
    std::strncpy(addr.sun_path, opt_.socketPath.c_str(), sizeof(addr.sun_path) - 1);
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
      throw DispatchError(std::string("socket failed: ") + std::strerror(errno));
    }
    // Probe before unlinking: a connect() that succeeds means a LIVE server
    // owns this path, and stealing it would strand that server (still
    // running, no longer reachable) while its clients silently land here.
    // Any connect failure — ENOENT, ECONNREFUSED — means the path is stale.
    if (const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0); probe >= 0) {
      const bool alive =
          ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
      ::close(probe);
      if (alive) {
        throw DispatchError("another server is already listening on " +
                            opt_.socketPath + "; refusing to steal its socket");
      }
    }
    ::unlink(opt_.socketPath.c_str());  // a stale path from a crashed server
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(listenFd_, 64) != 0) {
      throw DispatchError("cannot listen on " + opt_.socketPath + ": " +
                          std::strerror(errno));
    }
    boundPath_ = opt_.socketPath;
  } else if (opt_.tcpPort > 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opt_.tcpPort));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, never 0.0.0.0
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
      throw DispatchError(std::string("socket failed: ") + std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(listenFd_, 64) != 0) {
      throw DispatchError("cannot listen on 127.0.0.1:" + std::to_string(opt_.tcpPort) +
                          ": " + std::strerror(errno));
    }
  } else {
    throw std::invalid_argument("serve: a socketPath or tcpPort listen address is required");
  }
  util::setNonBlocking(listenFd_);
}

bool Server::spawnWorker(std::size_t i) {
  ServerWorker& s = workers_[i];
  std::vector<std::string> argv = opt_.workerCommand;
  argv.push_back("--index");
  argv.push_back(std::to_string(i));
  argv.push_back("--generation");
  argv.push_back(std::to_string(s.generation));
  argv.push_back("--heartbeat-ms");
  argv.push_back(std::to_string(opt_.heartbeatIntervalMs));
  const util::SubprocessEnv env = {
      {"XLV_WORKER_INDEX", std::to_string(i)},
      {"XLV_WORKER_GENERATION", std::to_string(s.generation)},
  };
  // Chaos hook: a spawn "fail" leaves the slot holding a never-started
  // process, which takes the same retire/respawn path a real fork failure
  // would. Opt-in per call site so the native-compile subprocess path is
  // untouched.
  s.proc = util::faultPoint("worker.spawn") == util::FaultAction::None
               ? util::Subprocess::spawn(argv, env)
               : util::Subprocess{};
  s.reader = FrameReader{};
  s.out = OutboundBuffer{};
  s.ready = false;
  s.busy = false;
  s.timedOut = false;
  if (!s.proc.started()) {
    s.retired = true;
    XLV_ERROR("campaignd") << "serve worker " << i << ": spawn failed";
    return false;
  }
  util::setNonBlocking(s.proc.stdinFd());
  util::setNonBlocking(s.proc.stdoutFd());
  s.lastBeat = Clock::now();
  ++ledger_.workersSpawned;
  return true;
}

void Server::assignWork() {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    ServerWorker& s = workers_[i];
    if (s.retired || !s.ready || s.busy) continue;
    if (rr_.empty()) return;
    // Round-robin ACROSS campaigns (each idle worker serves the next
    // campaign in admission order that still has work), heaviest-first
    // WITHIN one (TaskQueue::claim is LPT). That is the fairness contract:
    // a small campaign never starves behind a huge one's unit backlog.
    bool assigned = false;
    const std::size_t n = rr_.size();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t pos = (rrCursor_ + k) % n;
      auto it = campaigns_.find(rr_[pos]);
      if (it == campaigns_.end() || !it->second.queue.hasPending()) continue;
      rrCursor_ = (pos + 1) % n;
      submitUnit(i, it->second);
      assigned = true;
      break;
    }
    if (!assigned) return;  // nothing pending anywhere
  }
}

void Server::submitUnit(std::size_t wi, Campaign& c) {
  ServerWorker& s = workers_[wi];
  const DispatchTask& t = c.queue.claim();
  SubmitFrame submit;
  submit.specFnv = c.specFnv;
  submit.campaignId = c.id;
  submit.seq = ++seqCounter_;
  submit.taskIndex = t.index;
  submit.taskCount = c.taskCount;
  submit.attempt = t.attempts - 1;
  submit.unit = t.unit;
  submit.specPath = c.specPath;
  s.ready = false;
  s.busy = true;
  s.campaignId = c.id;
  s.taskIndex = t.index;
  s.lastBeat = Clock::now();
  s.out.enqueue(frameWire(encodeSubmitFrame(submit)));
  if (!s.out.flushTo(s.proc.stdinFd())) {
    workerDeath(wi, "submit-write-failed");
    return;
  }
  ++ledger_.submissions;
}

void Server::acceptClients() {
  for (;;) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained the backlog
    }
    // Chaos hook: an accept "failure" drops the fresh connection on the
    // floor — the client sees an unexplained close and must retry, which is
    // exactly the behaviour of a listener backlog overflow.
    if (util::faultPoint("server.accept") != util::FaultAction::None) {
      ::close(fd);
      continue;
    }
    util::setNonBlocking(fd);
    auto conn = std::make_unique<ClientConn>();
    conn->fd = fd;
    // Client sockets are untrusted: cap declared frame lengths well below
    // the 1 GiB codec ceiling the trusted worker pipes keep.
    conn->reader.setMaxFrameBytes(opt_.maxClientFrameBytes);
    conn->openedAt = Clock::now();
    conns_.push_back(std::move(conn));
  }
}

void Server::onClientReadable(ClientConn& conn) {
  bool eof = false;
  char buf[65536];
  while (!conn.dead) {
    const ssize_t n = ::read(conn.fd, buf, sizeof buf);
    if (n > 0) {
      conn.reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    eof = true;  // clean close and read errors both mean: this client is gone
    break;
  }
  if (!conn.dead) processClientFrames(conn);
  if (eof && !conn.dead) clientGone(conn);
}

void Server::processClientFrames(ClientConn& conn) {
  std::string doc;
  try {
    // A closing connection's reader is never advanced again: trailing bytes
    // after a reject are left unparsed (and an oversize header would throw
    // on every poll tick otherwise).
    while (!conn.dead && !conn.closing && conn.reader.next(doc)) {
      if (conn.campaignId == 0) {
        if (util::peekDocumentTag(doc) != kClientSubmitFrameTag) {
          throw util::DecodeError("expected a client-submit frame");
        }
        admit(conn, decodeClientSubmitFrame(doc));
      } else {
        // One connection carries exactly one campaign; anything after the
        // submission is a protocol violation.
        throw util::DecodeError("unexpected frame after the submission");
      }
    }
  } catch (const FrameCapExceeded& e) {
    // The oversize length came from the header alone — no body bytes were
    // buffered — so the client gets a structured answer, not a slammed door.
    ++ledger_.frameCapRejects;
    reject(conn, e.what(), 0);
  } catch (const util::DecodeError& e) {
    XLV_WARN("campaignd") << "client protocol error: " << e.what();
    clientGone(conn);
  }
}

void Server::admit(ClientConn& conn, const ClientSubmitFrame& f) {
  if (draining_) {
    // The drain contract: in-flight campaigns finish, new ones go elsewhere.
    // The retry hint points clients at whoever replaces this server.
    reject(conn, "server draining: not admitting new campaigns",
           opt_.rejectRetryAfterMs);
    return;
  }
  CampaignSpec spec;
  DispatchUnitPlan plan;
  try {
    spec = decodeCampaignSpec(f.spec);
    const std::size_t frag =
        f.maxFragmentMutants > 0 ? static_cast<std::size_t>(f.maxFragmentMutants)
                                 : opt_.maxFragmentMutants;
    plan = planDispatchUnits(spec, frag);
  } catch (const std::exception& e) {
    // retryAfterMs = 0: the submission itself is broken, retrying is
    // pointless (backpressure rejects below DO carry a retry hint).
    reject(conn, std::string("malformed submission: ") + e.what(), 0);
    return;
  }
  if (campaigns_.size() >= opt_.maxCampaigns) {
    reject(conn, "campaign limit reached (" + std::to_string(opt_.maxCampaigns) + ")",
           opt_.rejectRetryAfterMs);
    return;
  }
  const std::size_t queued = totalPendingUnits();
  // An idle server admits anything — a single campaign larger than the whole
  // pending budget must still be servable; the bound protects a BUSY server
  // from buffering without limit.
  if (queued > 0 && queued + plan.units.size() > opt_.maxPendingUnits) {
    reject(conn,
           "admission queue full (" + std::to_string(queued) + " units pending)",
           opt_.rejectRetryAfterMs);
    return;
  }

  const std::uint64_t id = ++lastCampaignId_;
  const fs::path specPath =
      specDir_ / ("xlv-campaignd-serve-" + std::to_string(::getpid()) + "-" +
                  std::to_string(id) + ".xlv");
  {
    std::ofstream out(specPath, std::ios::binary | std::ios::trunc);
    out << encodeCampaignSpec(spec);  // canonical bytes: fnv-checkable by workers
    if (!out) {
      reject(conn, "server cannot stage the spec handoff file", opt_.rejectRetryAfterMs);
      return;
    }
  }

  Campaign c;
  c.id = id;
  c.name = f.clientName;
  c.specFnv = plan.specFnv;
  c.specPath = specPath.string();
  c.queue = TaskQueue(plan);
  c.taskCount = c.queue.taskCount();
  if (f.deadlineMs > 0) {
    c.deadlineMs = f.deadlineMs;
    c.deadlineAt = Clock::now() + std::chrono::milliseconds(f.deadlineMs);
  }
  c.conn = &conn;
  conn.campaignId = id;
  auto [it, inserted] = campaigns_.emplace(id, std::move(c));
  (void)inserted;
  rr_.push_back(id);
  ++ledger_.campaignsAccepted;
  XLV_INFO("campaignd") << "campaign " << id << " ('" << f.clientName << "') admitted: "
                        << it->second.taskCount << " units";

  AcceptFrame accept;
  accept.campaignId = id;
  accept.specFnv = plan.specFnv;
  accept.unitCount = it->second.taskCount;
  conn.out.enqueue(frameWire(encodeAcceptFrame(accept)));
  flushConn(conn);

  auto again = campaigns_.find(id);
  if (again != campaigns_.end() && !again->second.finishing &&
      again->second.taskCount == 0) {
    finishSuccess(again->second);  // empty spec: done before it began
  }
}

void Server::reject(ClientConn& conn, const std::string& reason, std::uint64_t retryMs) {
  ++ledger_.campaignsRejected;
  XLV_WARN("campaignd") << "submission rejected: " << reason;
  RejectFrame rj;
  rj.reason = reason;
  rj.retryAfterMs = retryMs;
  conn.out.enqueue(frameWire(encodeRejectFrame(rj)));
  conn.closing = true;
  flushConn(conn);
}

void Server::flushConn(ClientConn& conn) {
  if (conn.dead || conn.fd < 0) return;
  if (!conn.out.flushTo(conn.fd)) {
    clientGone(conn);
    return;
  }
  if (conn.closing && conn.out.empty()) closeConn(conn);
}

void Server::clientGone(ClientConn& conn) {
  if (conn.dead) return;
  if (conn.campaignId != 0) {
    auto it = campaigns_.find(conn.campaignId);
    if (it != campaigns_.end() && !it->second.finishing) {
      Campaign& c = it->second;
      c.cancelled = true;
      c.finishing = true;
      rrRemove(c.id);
      XLV_WARN("campaignd") << "campaign " << c.id << " ('" << c.name
                            << "') cancelled: client disconnected with "
                            << c.queue.pendingCount() << " units pending, "
                            << inFlight(c.id) << " in flight";
    }
  }
  closeConn(conn);
}

void Server::closeConn(ClientConn& conn) {
  if (conn.fd >= 0) {
    ::close(conn.fd);
    conn.fd = -1;
  }
  conn.dead = true;
  if (conn.campaignId != 0) {
    auto it = campaigns_.find(conn.campaignId);
    if (it != campaigns_.end()) it->second.conn = nullptr;
  }
}

void Server::onWorkerReadable(std::size_t i) {
  ServerWorker& s = workers_[i];
  if (s.retired) return;
  char buf[65536];
  const ssize_t n = ::read(s.proc.stdoutFd(), buf, sizeof buf);
  if (n > 0) {
    s.reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    try {
      drainWorker(i);
    } catch (const util::DecodeError& e) {
      XLV_ERROR("campaignd") << "serve worker " << i << ": corrupt stream: " << e.what();
      s.proc.kill(SIGKILL);
      workerDeath(i, "protocol-error");
    }
  } else if (n == 0) {
    workerDeath(i, nullptr);
  } else if (errno != EINTR && errno != EAGAIN) {
    workerDeath(i, nullptr);
  }
}

void Server::drainWorker(std::size_t i) {
  std::string doc;
  while (workers_[i].reader.next(doc)) handleWorkerFrame(i, doc);
}

void Server::handleWorkerFrame(std::size_t i, const std::string& doc) {
  ServerWorker& s = workers_[i];
  const std::string tag = util::peekDocumentTag(doc);
  if (tag == kStatusFrameTag) {
    const StatusFrame st = decodeStatusFrame(doc);
    s.lastBeat = Clock::now();
    if (st.state == "ready") s.ready = true;
    return;
  }
  if (tag == kHeartbeatFrameTag) {
    decodeHeartbeatFrame(doc);
    s.lastBeat = Clock::now();
    ++ledger_.heartbeats;
    return;
  }
  if (tag == kResultFrameTag) {
    s.lastBeat = Clock::now();
    onResult(i, decodeResultFrame(doc));
    return;
  }
  throw util::DecodeError("unexpected frame '" + tag + "' from a worker");
}

void Server::onResult(std::size_t wi, ResultFrame rf) {
  ServerWorker& s = workers_[wi];
  auto it = campaigns_.find(rf.campaignId);
  if (it != campaigns_.end() && rf.taskIndex >= it->second.taskCount) {
    throw util::DecodeError("result for unknown task " + std::to_string(rf.taskIndex) +
                            " of campaign " + std::to_string(rf.campaignId));
  }
  if (s.busy && s.campaignId == rf.campaignId && s.taskIndex == rf.taskIndex) {
    s.busy = false;
  }
  if (it == campaigns_.end()) {
    // The owning campaign already finalized (cancelled and drained): spent
    // work with nowhere to go.
    ++ledger_.discardedResults;
    return;
  }
  Campaign& c = it->second;
  if (c.finishing) {
    ++c.discarded;
    ++ledger_.discardedResults;
    return;
  }
  if (!c.queue.complete(rf.taskIndex)) {
    // A retry raced its predecessor's drained result; copies are
    // bit-identical by construction, dropping one is safe.
    ++ledger_.duplicateResults;
    return;
  }
  ItemResultFrame ir;
  ir.campaignId = c.id;
  ir.taskIndex = rf.taskIndex;
  ir.taskCount = c.taskCount;
  ir.output = std::move(rf.output);
  if (c.conn != nullptr && !c.conn->dead) {
    c.conn->out.enqueue(frameWire(encodeItemResultFrame(ir)));
    flushConn(*c.conn);  // may cancel c (client write failure sets finishing)
  }
  if (!c.finishing && c.queue.done()) finishSuccess(c);
}

void Server::streamOutput(Campaign& c, std::size_t taskIndex, ShardOutput output) {
  if (c.conn == nullptr || c.conn->dead) return;
  ItemResultFrame ir;
  ir.campaignId = c.id;
  ir.taskIndex = taskIndex;
  ir.taskCount = c.taskCount;
  ir.output = std::move(output);
  c.conn->out.enqueue(frameWire(encodeItemResultFrame(ir)));
  flushConn(*c.conn);  // may cancel c (client write failure sets finishing)
}

/// A unit exhausted its attempt budget. Before this layer existed that
/// failed the whole campaign; now the failure is narrowed to what is
/// actually unrunnable:
///   * a multi-mutant fragment is BISECTED — the parent task retires behind
///     an empty placeholder output (so the client's merge still sees its
///     shard index) and both halves re-queue with fresh attempt budgets,
///     homing in on the poison mutant in log2(fragment) rounds;
///   * an irreducible unit (whole item or single mutant) is QUARANTINED —
///     retired behind a synthesized output whose one item carries a
///     structured error, so every other item still completes bit-identical.
void Server::quarantineOrBisect(Campaign& c, std::size_t taskIndex,
                                const std::string& reason) {
  if (c.queue.isRetired(taskIndex)) return;
  // Copies: addTask grows the task vector, invalidating references into it.
  const DispatchTask t = c.queue.task(taskIndex);
  const ShardUnit unit = t.unit;
  if (!unit.wholeItem() && unit.mutantEnd - unit.mutantBegin >= 2) {
    c.queue.retire(taskIndex);
    const std::size_t mid = unit.mutantBegin + (unit.mutantEnd - unit.mutantBegin) / 2;
    // Heavier (or equal) half first so the front-of-queue insert keeps the
    // poison hunt ahead of untouched work: addTask prepends, so push the
    // high half, then the low half lands in front of it.
    c.queue.addTask(ShardUnit{unit.taskId, mid, unit.mutantEnd}, unit.mutantEnd - mid);
    c.queue.addTask(ShardUnit{unit.taskId, unit.mutantBegin, mid}, mid - unit.mutantBegin);
    c.taskCount = c.queue.taskCount();
    ++c.bisections;
    ++ledger_.bisections;
    XLV_WARN("campaignd") << "campaign " << c.id << " task " << taskIndex << " (item "
                          << unit.taskId << " mutants [" << unit.mutantBegin << ", "
                          << unit.mutantEnd << ")) lost after " << t.attempts
                          << " attempts (" << reason << "); bisected at " << mid;
    ShardOutput placeholder;
    placeholder.specFnv = c.specFnv;
    placeholder.shardIndex = static_cast<int>(taskIndex);
    placeholder.shardCount = static_cast<int>(c.taskCount);
    streamOutput(c, taskIndex, std::move(placeholder));
    return;
  }
  c.queue.retire(taskIndex);
  c.quarantined.push_back(taskIndex);
  ++ledger_.quarantinedUnits;
  const std::string what =
      unit.wholeItem()
          ? "item " + std::to_string(unit.taskId)
          : "item " + std::to_string(unit.taskId) + " mutant " +
                std::to_string(unit.mutantBegin);
  XLV_ERROR("campaignd") << "campaign " << c.id << " quarantined " << what
                         << " (task " << taskIndex << "): lost after " << t.attempts
                         << " attempts (last: " << reason << ")";
  ShardOutput q;
  q.specFnv = c.specFnv;
  q.shardIndex = static_cast<int>(taskIndex);
  q.shardCount = static_cast<int>(c.taskCount);
  q.units.push_back(unit);
  CampaignItemResult item;
  item.taskId = unit.taskId;
  item.error = "quarantined: " + what + " lost after " + std::to_string(t.attempts) +
               " attempts (last: " + reason + ")";
  q.result.items.push_back(std::move(item));
  streamOutput(c, taskIndex, std::move(q));
  if (!c.finishing && c.queue.done()) finishSuccess(c);
}

void Server::requeueLostUnit(std::size_t wi, const std::string& reason) {
  ServerWorker& s = workers_[wi];
  if (!s.busy) return;
  s.busy = false;
  auto it = campaigns_.find(s.campaignId);
  if (it == campaigns_.end()) return;
  Campaign& c = it->second;
  if (c.finishing) return;  // cancelled campaigns do not re-queue
  if (c.queue.isCompleted(s.taskIndex)) return;  // its result was drained in time
  const DispatchTask& t = c.queue.task(s.taskIndex);
  if (static_cast<int>(t.attempts) >= opt_.maxTaskAttempts) {
    // An unrunnable unit is isolated — bisected or quarantined — so it
    // costs its own item, not its campaign (and never the server).
    quarantineOrBisect(c, s.taskIndex, reason);
    return;
  }
  c.queue.requeue(s.taskIndex);
  ++c.requeues;
  XLV_WARN("campaignd") << "re-queued task " << t.index << " of campaign " << c.id
                        << " (attempt " << t.attempts << " lost to worker " << wi
                        << ": " << reason << ")";
}

void Server::workerDeath(std::size_t i, const char* reasonHint) {
  ServerWorker& s = workers_[i];
  try {
    drainWorker(i);  // salvage results already in the pipe
  } catch (const util::DecodeError&) {
    // A crash can truncate mid-frame; the re-queue below recovers the rest.
  }
  // A failed submit write declares the worker dead while the process may
  // still be alive (its stream is now desynced either way) — put it down
  // before reaping, or wait() blocks the whole event loop on a live child.
  if (s.proc.running()) s.proc.kill(SIGKILL);
  s.proc.wait();
  const std::string reason = reasonHint != nullptr ? reasonHint
                             : s.timedOut          ? "heartbeat-timeout"
                             : s.proc.termSignal() != 0 ? "worker-signal"
                                                        : "worker-exit";
  XLV_WARN("campaignd") << "serve worker " << i << " gen " << s.generation << " died ("
                        << reason << ", exit=" << s.proc.exitCode()
                        << ", signal=" << s.proc.termSignal() << ")";
  requeueLostUnit(i, reason);
  s.ready = false;
  if (s.respawns < opt_.maxWorkerRespawns) {
    ++s.respawns;
    ++s.generation;
    ++ledger_.workerRespawns;
    spawnWorker(i);
  } else {
    s.retired = true;
  }
  const bool anyAlive = std::any_of(workers_.begin(), workers_.end(),
                                    [](const ServerWorker& w) { return !w.retired; });
  if (!anyAlive && !campaigns_.empty()) {
    throw DispatchError("all serve workers lost with " +
                        std::to_string(campaigns_.size()) + " campaigns live");
  }
}

void Server::failCampaign(Campaign& c, const std::string& msg) {
  XLV_ERROR("campaignd") << "campaign " << c.id << " ('" << c.name << "') failed: " << msg;
  c.error = msg;
  c.finishing = true;
  rrRemove(c.id);
  if (c.conn != nullptr && !c.conn->dead) {
    CampaignDoneFrame done;
    done.campaignId = c.id;
    done.unitsTotal = c.taskCount;
    done.unitsCompleted = c.queue.completedCount();
    done.requeues = c.requeues;
    done.cancelled = false;
    done.error = msg;
    done.quarantined = c.quarantined;
    c.conn->out.enqueue(frameWire(encodeCampaignDoneFrame(done)));
    c.conn->closing = true;
    flushConn(*c.conn);
  }
  // Finalized by sweepFinished() once in-flight units drained.
}

void Server::finishSuccess(Campaign& c) {
  CampaignDoneFrame done;
  done.campaignId = c.id;
  done.unitsTotal = c.taskCount;
  done.unitsCompleted = c.queue.completedCount();
  done.requeues = c.requeues;
  // unitsTotal is the FINAL task count: bisection appended tasks, and the
  // client must normalize its streamed outputs' shardCount to this before
  // merging.
  done.quarantined = c.quarantined;
  ClientConn* conn = c.conn;
  if (conn != nullptr && !conn->dead) {
    conn->out.enqueue(frameWire(encodeCampaignDoneFrame(done)));
    conn->closing = true;
  }
  // Finalize BEFORE the flush: the campaign has left the scheduler either
  // way, and a write failure during the flush must not re-cancel it.
  finalize(c);
  if (conn != nullptr && !conn->dead) flushConn(*conn);
}

void Server::finalize(Campaign& c) {
  CampaignLedgerEntry e;
  e.campaignId = c.id;
  e.name = c.name;
  e.unitsTotal = c.taskCount;
  e.unitsCompleted = c.queue.completedCount();
  e.requeues = c.requeues;
  e.discardedResults = c.discarded;
  e.cancelled = c.cancelled;
  e.error = c.error;
  e.bisections = c.bisections;
  e.quarantined = c.quarantined;
  e.drained = c.drained;
  ledger_.campaigns.push_back(e);
  if (c.cancelled) {
    ++ledger_.campaignsCancelled;
  } else {
    ++ledger_.campaignsCompleted;
  }
  XLV_INFO("campaignd") << "campaign " << c.id << " ('" << c.name << "') finished: "
                        << e.unitsCompleted << "/" << e.unitsTotal << " units, "
                        << e.requeues << " re-queues"
                        << (c.cancelled ? " (cancelled)" : "");
  removeSpecFile(c);
  rrRemove(c.id);
  if (c.conn != nullptr) c.conn->campaignId = 0;
  const std::uint64_t id = c.id;
  campaigns_.erase(id);  // `c` is dangling from here on
  ++served_;
}

void Server::sweepFinished() {
  std::vector<std::uint64_t> doneIds;
  for (auto& [id, c] : campaigns_) {
    if (c.finishing && inFlight(id) == 0) doneIds.push_back(id);
  }
  for (const std::uint64_t id : doneIds) {
    auto it = campaigns_.find(id);
    if (it != campaigns_.end()) finalize(it->second);
  }
}

void Server::removeSpecFile(const Campaign& c) {
  if (c.specPath.empty()) return;
  std::error_code ec;
  fs::remove(c.specPath, ec);
}

void Server::rrRemove(std::uint64_t id) {
  const auto it = std::find(rr_.begin(), rr_.end(), id);
  if (it == rr_.end()) return;
  const std::size_t pos = static_cast<std::size_t>(it - rr_.begin());
  rr_.erase(it);
  if (rr_.empty()) {
    rrCursor_ = 0;
  } else {
    if (pos < rrCursor_) --rrCursor_;
    rrCursor_ %= rr_.size();
  }
}

std::size_t Server::inFlight(std::uint64_t id) const {
  std::size_t n = 0;
  for (const ServerWorker& s : workers_) {
    if (s.busy && s.campaignId == id) ++n;
  }
  return n;
}

std::size_t Server::totalPendingUnits() const {
  std::size_t n = 0;
  for (const auto& [id, c] : campaigns_) {
    if (!c.finishing) n += c.queue.pendingCount();
  }
  return n;
}

void Server::heartbeatScan() {
  const auto now = Clock::now();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    ServerWorker& s = workers_[i];
    if (s.retired || !s.busy || s.timedOut) continue;
    const auto silentMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - s.lastBeat).count();
    if (silentMs > opt_.heartbeatTimeoutMs) {
      XLV_WARN("campaignd") << "serve worker " << i << " silent for " << silentMs
                            << " ms on campaign " << s.campaignId << " task "
                            << s.taskIndex << "; killing";
      s.timedOut = true;
      ++ledger_.workersKilled;
      s.proc.kill(SIGKILL);
    }
  }
}

void Server::deadlineScan() {
  const auto now = Clock::now();
  std::vector<std::uint64_t> overdue;
  for (auto& [id, c] : campaigns_) {
    if (!c.finishing && c.deadlineMs > 0 && now >= c.deadlineAt) overdue.push_back(id);
  }
  for (const std::uint64_t id : overdue) {
    auto it = campaigns_.find(id);
    if (it == campaigns_.end() || it->second.finishing) continue;
    ++ledger_.deadlineFailures;
    failCampaign(it->second, "deadline exceeded (" +
                                 std::to_string(it->second.deadlineMs) + " ms)");
  }
}

void Server::clientReadScan() {
  if (opt_.clientReadTimeoutMs <= 0) return;
  const auto now = Clock::now();
  for (auto& connPtr : conns_) {
    ClientConn& conn = *connPtr;
    // Only pre-submission connections: once a campaign is admitted the
    // client is a pure reader and owes us nothing further.
    if (conn.dead || conn.closing || conn.campaignId != 0) continue;
    const auto idleMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - conn.openedAt)
            .count();
    if (idleMs > opt_.clientReadTimeoutMs) {
      ++ledger_.clientReadTimeouts;
      XLV_WARN("campaignd") << "client connection idle " << idleMs
                            << " ms without a complete submission; closing";
      reject(conn,
             "no complete submission within " +
                 std::to_string(opt_.clientReadTimeoutMs) + " ms",
             0);
    }
  }
}

void Server::onDrainRequest() {
  ++ledger_.drainRequests;
  if (!draining_) {
    draining_ = true;
    ledger_.drained = true;
    for (auto& [id, c] : campaigns_) c.drained = true;
    XLV_INFO("campaignd") << "drain requested: finishing " << campaigns_.size()
                          << " live campaigns, rejecting new submissions";
  } else {
    XLV_WARN("campaignd") << "second drain signal: stopping immediately";
    drainHard_ = true;
  }
}

/// Drain exits the poll loop the moment the last campaign finalizes, which
/// can leave final CampaignDoneFrames sitting in client outbound buffers
/// (the frame is enqueued and finalization does not wait for the socket).
/// Give those sockets a short, bounded POLLOUT window before the workers go
/// down — losing the done frame would turn a clean drain into a client-side
/// "connection closed mid-campaign" error.
void Server::flushClosingConns() {
  const auto deadline = Clock::now() + std::chrono::milliseconds(500);
  for (auto& connPtr : conns_) {
    ClientConn& conn = *connPtr;
    while (!conn.dead && conn.fd >= 0 && !conn.out.empty()) {
      const auto leftMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                              deadline - Clock::now())
                              .count();
      if (leftMs <= 0) return;
      pollfd p{conn.fd, POLLOUT, 0};
      const int got = ::poll(&p, 1, static_cast<int>(leftMs));
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) break;
      flushConn(conn);
    }
  }
}

void Server::shutdownWorkers() {
  for (ServerWorker& s : workers_) {
    if (s.retired || !s.proc.started()) continue;
    SubmitFrame bye;
    bye.seq = ++seqCounter_;
    bye.shutdown = true;
    s.out.enqueue(frameWire(encodeSubmitFrame(bye)));
    // poll(2) for writability under the deadline instead of a sleep-tick
    // loop: the wait ends the instant the pipe drains (or the worker dies),
    // and a wedged worker costs exactly the deadline, not deadline + tick.
    const auto deadline = Clock::now() + std::chrono::milliseconds(200);
    while (!s.out.empty()) {
      const auto leftMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                              deadline - Clock::now())
                              .count();
      if (leftMs <= 0) break;
      pollfd p{s.proc.stdinFd(), POLLOUT, 0};
      const int got = ::poll(&p, 1, static_cast<int>(leftMs));
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) break;  // timeout or poll failure: give up on this pipe
      if (!s.out.flushTo(s.proc.stdinFd())) break;
    }
    s.proc.closeStdin();
  }
  const auto grace = Clock::now() + std::chrono::seconds(2);
  for (ServerWorker& s : workers_) {
    if (s.retired || !s.proc.started()) continue;
    // Exit detection rides the worker's stdout: its close (POLLHUP/EOF) is
    // the event poll can wait on, so no fixed-tick running() sampling.
    while (s.proc.running()) {
      const auto leftMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                              grace - Clock::now())
                              .count();
      if (leftMs <= 0) break;
      pollfd p{s.proc.stdoutFd(), POLLIN, 0};
      const int got =
          ::poll(&p, 1, static_cast<int>(std::min<long long>(leftMs, 50)));
      if (got < 0 && errno == EINTR) continue;
      if (got > 0 && (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        // Discard straggler frames; EOF here usually means the exit we are
        // waiting for, which the running() check above confirms.
        char buf[4096];
        while (::read(s.proc.stdoutFd(), buf, sizeof buf) > 0) {
        }
      }
    }
    if (s.proc.running()) s.proc.kill(SIGKILL);
    s.proc.wait();
  }
}

ServeResult Server::run() {
  if (opt_.workerCommand.empty()) {
    throw std::invalid_argument("serve: workerCommand must not be empty");
  }
  if (opt_.heartbeatIntervalMs <= 0 || opt_.heartbeatTimeoutMs <= 0) {
    throw std::invalid_argument("serve: heartbeat interval/timeout must be > 0");
  }
  if (opt_.maxTaskAttempts < 1) {
    throw std::invalid_argument("serve: maxTaskAttempts must be >= 1");
  }
  ignoreSigpipe();

  if (opt_.enableSignalDrain) {
    int p[2];
    if (::pipe(p) != 0) {
      throw DispatchError(std::string("drain pipe failed: ") + std::strerror(errno));
    }
    drainReadFd_ = p[0];
    drainWriteFd_ = p[1];
    util::setNonBlocking(drainReadFd_);
    util::setNonBlocking(drainWriteFd_);
    gDrainPipeWrite = drainWriteFd_;
    struct sigaction sa{};
    sa.sa_handler = onDrainSignal;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;  // the self-pipe wakes poll; no EINTR churn
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
  }

  specDir_ = opt_.specDir.empty() ? fs::temp_directory_path() : fs::path(opt_.specDir);
  std::error_code ec;
  fs::create_directories(specDir_, ec);

  listen();

  const int workerCount = resolveWorkerCount(opt_.workers);
  workers_.resize(static_cast<std::size_t>(workerCount));
  std::size_t live = 0;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (spawnWorker(i)) ++live;
  }
  if (live == 0) throw DispatchError("could not spawn any serve worker");
  XLV_INFO("campaignd") << "serving on "
                        << (!boundPath_.empty()
                                ? boundPath_
                                : "127.0.0.1:" + std::to_string(opt_.tcpPort))
                        << " with " << live << " workers";

  struct PollRef {
    Ref kind;
    std::size_t idx;
  };

  for (;;) {
    if (drainHard_) break;
    if (draining_ && campaigns_.empty()) break;
    if (opt_.maxCampaignsServed > 0 && served_ >= opt_.maxCampaignsServed &&
        campaigns_.empty()) {
      break;
    }

    assignWork();

    std::vector<pollfd> fds;
    std::vector<PollRef> refs;
    fds.push_back(pollfd{listenFd_, POLLIN, 0});
    refs.push_back({Ref::Listener, 0});
    if (drainReadFd_ >= 0) {
      fds.push_back(pollfd{drainReadFd_, POLLIN, 0});
      refs.push_back({Ref::DrainPipe, 0});
    }
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const ServerWorker& s = workers_[i];
      if (s.retired || !s.proc.started()) continue;
      fds.push_back(pollfd{s.proc.stdoutFd(), POLLIN, 0});
      refs.push_back({Ref::WorkerOut, i});
      if (!s.out.empty() && s.proc.stdinFd() >= 0) {
        fds.push_back(pollfd{s.proc.stdinFd(), POLLOUT, 0});
        refs.push_back({Ref::WorkerIn, i});
      }
    }
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      const ClientConn& conn = *conns_[i];
      if (conn.dead || conn.fd < 0) continue;
      const short events =
          static_cast<short>(conn.out.empty() ? POLLIN : (POLLIN | POLLOUT));
      fds.push_back(pollfd{conn.fd, events, 0});
      refs.push_back({Ref::Client, i});
    }

    const int pollMs = std::clamp(opt_.heartbeatTimeoutMs / 4, 10, 100);
    const int got = ::poll(fds.data(), fds.size(), pollMs);
    if (got < 0 && errno != EINTR) {
      throw DispatchError(std::string("poll failed: ") + std::strerror(errno));
    }

    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents == 0) continue;
      const PollRef ref = refs[k];
      switch (ref.kind) {
        case Ref::Listener:
          if (fds[k].revents & POLLIN) acceptClients();
          break;
        case Ref::WorkerOut:
          if (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) onWorkerReadable(ref.idx);
          break;
        case Ref::WorkerIn: {
          ServerWorker& s = workers_[ref.idx];
          if (s.retired) break;
          if (fds[k].revents & (POLLOUT | POLLHUP | POLLERR)) {
            if (!s.out.flushTo(s.proc.stdinFd())) {
              workerDeath(ref.idx, "submit-write-failed");
            }
          }
          break;
        }
        case Ref::Client: {
          ClientConn& conn = *conns_[ref.idx];
          if (conn.dead) break;
          if (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) onClientReadable(conn);
          if (!conn.dead && (fds[k].revents & POLLOUT)) flushConn(conn);
          break;
        }
        case Ref::DrainPipe: {
          char buf[64];
          ssize_t n;
          while ((n = ::read(drainReadFd_, buf, sizeof buf)) > 0) {
            for (ssize_t b = 0; b < n; ++b) onDrainRequest();
          }
          break;
        }
      }
    }

    heartbeatScan();
    deadlineScan();
    clientReadScan();
    sweepFinished();
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::unique_ptr<ClientConn>& c) {
                                  return c->dead;
                                }),
                 conns_.end());
  }

  flushClosingConns();
  shutdownWorkers();
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  if (!boundPath_.empty()) {
    ::unlink(boundPath_.c_str());
    boundPath_.clear();
  }
  XLV_INFO("campaignd") << "served " << served_ << " campaigns ("
                        << ledger_.campaignsCompleted << " completed, "
                        << ledger_.campaignsCancelled << " cancelled, "
                        << ledger_.campaignsRejected << " rejected)"
                        << (ledger_.drained ? " [drained]" : "");
  return ServeResult{ledger_};
}

}  // namespace

ServeResult runCampaignServer(const ServeOptions& opt) { return Server(opt).run(); }

// --- client ------------------------------------------------------------------

namespace {

/// One connect-submit-stream attempt; submitCampaign wraps it in the retry
/// loop.
SubmitOutcome submitCampaignOnce(const CampaignSpec& spec, const SubmitOptions& opt) {
  SubmitOutcome out;
  const int fd = connectToServer(opt.socketPath, opt.tcpPort, out.error);
  if (fd < 0) return out;

  ClientSubmitFrame submit;
  submit.clientName = opt.clientName;
  submit.spec = encodeCampaignSpec(spec);
  submit.maxFragmentMutants = static_cast<std::uint64_t>(opt.maxFragmentMutants);
  submit.deadlineMs = opt.deadlineMs;
  if (!writeFdAll(fd, frameWire(encodeClientSubmitFrame(submit)))) {
    out.error = std::string("submit write failed: ") + std::strerror(errno);
    ::close(fd);
    return out;
  }

  FrameReader reader;
  std::string doc;
  long items = 0;
  auto disconnectDue = [&] {
    return opt.disconnectAfterItems >= 0 && items >= opt.disconnectAfterItems &&
           out.accepted;
  };
  while (out.error.empty() && !out.done && !out.rejected && !out.disconnected) {
    int readErrno = 0;
    FrameRead got = FrameRead::Eof;
    try {
      got = readFrameBlocking(fd, reader, doc, &readErrno);
    } catch (const util::DecodeError& e) {
      out.error = std::string("corrupt stream from server: ") + e.what();
      break;
    }
    if (got == FrameRead::Eof) {
      out.error = "server closed the connection mid-campaign";
      break;
    }
    if (got == FrameRead::Error) {
      out.error = std::string("socket read failed: ") + std::strerror(readErrno);
      break;
    }
    try {
      const std::string tag = util::peekDocumentTag(doc);
      if (tag == kAcceptFrameTag) {
        const AcceptFrame accept = decodeAcceptFrame(doc);
        out.accepted = true;
        out.campaignId = accept.campaignId;
        out.unitCount = accept.unitCount;
      } else if (tag == kRejectFrameTag) {
        const RejectFrame rj = decodeRejectFrame(doc);
        out.rejected = true;
        out.rejectReason = rj.reason;
        out.retryAfterMs = rj.retryAfterMs;
      } else if (tag == kItemResultFrameTag) {
        ItemResultFrame ir = decodeItemResultFrame(doc);
        out.outputs.push_back(std::move(ir.output));
        ++items;
      } else if (tag == kCampaignDoneFrameTag) {
        const CampaignDoneFrame done = decodeCampaignDoneFrame(doc);
        out.done = true;
        out.quarantined = done.quarantined;
        if (done.unitsTotal > 0) {
          // Server-side bisection appends tasks, so outputs streamed before
          // a split carry a stale shardCount; the done frame's unitsTotal
          // is the final count every output must agree on before merging.
          out.unitCount = done.unitsTotal;
          for (ShardOutput& o : out.outputs) {
            o.shardCount = static_cast<int>(done.unitsTotal);
          }
        }
        if (!done.error.empty()) {
          out.error = done.error;
        } else if (done.cancelled) {
          out.error = "campaign cancelled by the server";
        }
      } else {
        out.error = "unexpected frame '" + tag + "' from the server";
      }
    } catch (const util::DecodeError& e) {
      out.error = std::string("bad frame from server: ") + e.what();
    }
    if (out.error.empty() && disconnectDue()) out.disconnected = true;
  }
  ::close(fd);

  if (out.done && out.error.empty()) {
    try {
      out.result = mergeShards(spec, out.outputs);
    } catch (const std::exception& e) {
      out.error = std::string("merge failed: ") + e.what();
    }
  }
  return out;
}

}  // namespace

SubmitOutcome submitCampaign(const CampaignSpec& spec, const SubmitOptions& opt) {
  ignoreSigpipe();
  // Deterministic when seeded (tests); otherwise derived from the pid so a
  // herd of clients rejected together does not retry together.
  util::Prng jitter(opt.retryJitterSeed != 0
                        ? opt.retryJitterSeed
                        : static_cast<std::uint64_t>(::getpid()) + 1);
  std::uint64_t backoffMs = std::max<std::uint64_t>(opt.retryBaseMs, 1);
  SubmitOutcome out;
  for (int attempt = 0;; ++attempt) {
    out = submitCampaignOnce(spec, opt);
    out.retries = static_cast<std::uint64_t>(attempt);
    if (attempt >= opt.maxRetries) break;
    // Retry ONLY failures where the campaign provably never started: a
    // structured backpressure reject carrying a retry hint, or a connection
    // that never opened. A mid-stream disconnect is NOT retried — the
    // campaign may still be running server-side and a blind resubmit would
    // double-run it.
    const bool retryableReject = out.rejected && out.retryAfterMs > 0;
    const bool retryableConnect = !out.accepted && !out.rejected && !out.done &&
                                  out.error.rfind("cannot connect", 0) == 0;
    if (!retryableReject && !retryableConnect) break;
    std::uint64_t delayMs =
        std::max(backoffMs, retryableReject ? out.retryAfterMs : 0);
    // ±50% jitter: spread [delay/2, 3*delay/2] keeps synchronized clients
    // from re-colliding on the same backoff schedule.
    delayMs = delayMs / 2 + jitter.below(delayMs + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(delayMs));
    backoffMs *= 2;
  }
  return out;
}

// --- ledger JSON -------------------------------------------------------------

std::string encodeServeLedgerJson(const ServeLedger& ledger) {
  std::string out = "{\n";
  auto num = [&](const char* key, std::uint64_t v) {
    out += "  \"";
    out += key;
    out += "\": ";
    out += std::to_string(v);
    out += ",\n";
  };
  auto escape = [](const std::string& s) {
    std::string r;
    for (char ch : s) {
      if (ch == '"' || ch == '\\') {
        r += '\\';
        r += ch;
      } else if (ch == '\n') {
        r += "\\n";
      } else {
        r += ch;
      }
    }
    return r;
  };
  num("campaignsAccepted", ledger.campaignsAccepted);
  num("campaignsRejected", ledger.campaignsRejected);
  num("campaignsCompleted", ledger.campaignsCompleted);
  num("campaignsCancelled", ledger.campaignsCancelled);
  num("submissions", ledger.submissions);
  num("duplicateResults", ledger.duplicateResults);
  num("discardedResults", ledger.discardedResults);
  num("workersSpawned", ledger.workersSpawned);
  num("workerRespawns", ledger.workerRespawns);
  num("workersKilled", ledger.workersKilled);
  num("heartbeats", ledger.heartbeats);
  num("quarantinedUnits", ledger.quarantinedUnits);
  num("bisections", ledger.bisections);
  num("deadlineFailures", ledger.deadlineFailures);
  num("clientReadTimeouts", ledger.clientReadTimeouts);
  num("frameCapRejects", ledger.frameCapRejects);
  num("drainRequests", ledger.drainRequests);
  out += std::string("  \"drained\": ") + (ledger.drained ? "true" : "false") + ",\n";
  out += "  \"campaigns\": [";
  for (std::size_t i = 0; i < ledger.campaigns.size(); ++i) {
    const CampaignLedgerEntry& c = ledger.campaigns[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"campaignId\": " + std::to_string(c.campaignId);
    out += ", \"name\": \"" + escape(c.name) + "\"";
    out += ", \"unitsTotal\": " + std::to_string(c.unitsTotal);
    out += ", \"unitsCompleted\": " + std::to_string(c.unitsCompleted);
    out += ", \"requeues\": " + std::to_string(c.requeues);
    out += ", \"discardedResults\": " + std::to_string(c.discardedResults);
    out += std::string(", \"cancelled\": ") + (c.cancelled ? "true" : "false");
    out += ", \"error\": \"" + escape(c.error) + "\"";
    out += ", \"bisections\": " + std::to_string(c.bisections);
    out += ", \"quarantined\": [";
    for (std::size_t q = 0; q < c.quarantined.size(); ++q) {
      if (q > 0) out += ", ";
      out += std::to_string(c.quarantined[q]);
    }
    out += "]";
    out += std::string(", \"drained\": ") + (c.drained ? "true" : "false");
    out += "}";
  }
  out += ledger.campaigns.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace xlv::campaign
