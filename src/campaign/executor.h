// Chunked thread-pool executor for mutation campaigns.
//
// The paper's mutation analysis (Section 7) is embarrassingly parallel: every
// delay mutant is an independent golden-vs-injected TLM co-simulation. This
// executor turns an index space [0, n) into dynamically claimed chunks served
// by a pool of worker threads, with three properties the campaign layer
// relies on:
//
//   * determinism   — tasks are identified by their index; callers write
//     results into pre-sized slots, so the merged output is bit-identical to
//     the serial path regardless of thread count or claim order;
//   * serial purity — threads == 1 runs every task inline on the calling
//     thread in index order, byte-for-byte today's serial behavior (no pool,
//     no atomics on the hot path);
//   * deterministic failure — when tasks throw, the exception of the
//     LOWEST-indexed failing task is rethrown after all workers have
//     stopped, so a campaign fails the same way at any thread count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

namespace xlv::campaign {

struct ExecutorConfig {
  /// Worker threads. 0 = auto: the XLV_THREADS environment variable when set
  /// to a positive integer, otherwise std::thread::hardware_concurrency().
  /// Negative values degrade to 1 (serial), never to auto.
  int threads = 0;
  /// Task indices claimed per atomic fetch. 0 = auto (n / (threads * 8),
  /// clamped to [1, 64]); larger chunks amortize contention for short tasks.
  int chunkSize = 0;
};

/// Resolve a requested thread count against the XLV_THREADS override and the
/// hardware concurrency (logged once per process via util/log, component
/// "campaign"). A malformed or out-of-range override is ignored with a
/// warning (once per distinct value) and degrades to auto.
int resolveThreadCount(int requested);

/// Test hook: forget which malformed XLV_THREADS values were already warned
/// about, so warning assertions stay valid under --gtest_repeat.
void resetThreadEnvWarningsForTest();

class Executor {
 public:
  explicit Executor(ExecutorConfig cfg = {});

  /// The resolved worker count this executor launches for large-enough runs.
  int threads() const noexcept { return threads_; }

  /// Workers actually engaged for an n-task run (never more than n, at
  /// least 1). The single source of truth for reported thread counts.
  int effectiveThreads(std::size_t n) const noexcept {
    if (n == 0) return 1;
    return static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(threads_), n));
  }

  /// Run task(0) .. task(n-1), blocking until all complete. `task` must be
  /// safe to invoke concurrently from multiple threads for distinct indices.
  /// Rethrows the lowest-index task exception, if any (what the serial
  /// order would throw first); later tasks may be skipped after a failure.
  void run(std::size_t n, const std::function<void(std::size_t)>& task) const;

  /// Convenience: materialize `fn(i)` for i in [0, n) in index order.
  template <class T, class F>
  std::vector<T> map(std::size_t n, F&& fn) const {
    static_assert(!std::is_same_v<T, bool>,
                  "map<bool> would race on std::vector<bool>'s packed bits; use char");
    std::vector<T> out(n);
    run(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  int threads_ = 1;
  int chunkSize_ = 0;
};

}  // namespace xlv::campaign
