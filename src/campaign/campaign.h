// Campaign layer: batched execution of the paper's methodology.
//
// A campaign is a list of independent items — one (IP × sensor-kind ×
// options) combination each — scheduled onto the chunked thread pool
// (campaign/executor.h). Each item runs the composable flow stages of
// core/flow.h end to end; results are merged in task-id order, so a
// CampaignResult is deterministic for a given spec regardless of thread
// count. Item failures are captured per item (the rest of the campaign
// completes), mirroring how a regression farm reports one broken seed
// without discarding the batch.
//
// Two levels of parallelism compose:
//   * across items  — CampaignSpec::executor (this file);
//   * within one item's mutation analysis — FlowOptions::analysisThreads
//     (the per-mutant campaign inside analyzeMutations).
// fullMatrixCampaign() keeps the inner level serial when the outer pool has
// more than one worker, avoiding oversubscription.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "campaign/executor.h"
#include "core/flow.h"
#include "ips/case_study.h"

namespace xlv::campaign {

/// One independent unit of campaign work.
struct CampaignItem {
  ips::CaseStudy caseStudy;
  core::FlowOptions options;
  std::string label;  ///< defaults to "<ip>/<sensor-kind>" when empty
  /// When non-empty, the item's elaborate+insertion prefix is fetched from
  /// (or built into) the process-wide core::flowPrefixCache() under this
  /// key and the flow runs via runFlowWithPrefix. Sweep items that agree on
  /// the insertion axes share the key (core::flowPrefixKey), so one task
  /// elaborates and the rest reuse. Empty = self-contained runFlow.
  std::string prefixKey;
};

struct CampaignSpec {
  std::string name = "campaign";
  std::vector<CampaignItem> items;
  ExecutorConfig executor;
};

struct CampaignItemResult {
  std::size_t taskId = 0;
  std::string label;
  core::FlowReport report;
  double taskSeconds = 0.0;    ///< wall time of this item on its worker
  double goldenSeconds = 0.0;  ///< golden-trace time inside this item (~0 on a cache hit)
  bool goldenFromCache = false;  ///< golden trace reused from the process cache
  bool prefixShared = false;     ///< elaborate+insertion reused from the prefix cache
  std::string error;             ///< non-empty when the item threw
};

struct CampaignResult {
  std::string name;
  std::vector<CampaignItemResult> items;  ///< always in task-id order
  /// Total simulation work: per-item task time plus, for items whose inner
  /// mutation analysis ran parallel, the analysis work beyond its wall time
  /// — so golden-trace recording is always accounted once per recording,
  /// and cache savings show up as a simSeconds drop against goldenSeconds.
  double simSeconds = 0.0;
  /// Golden-trace time actually spent across items (cache hits contribute
  /// ~0; compare with items.size() × a recording to see the savings).
  double goldenSeconds = 0.0;
  int goldenCacheHits = 0;    ///< items whose golden trace came from the cache
  int prefixCacheHits = 0;    ///< items that reused a shared stage prefix
  /// Per-mutant co-simulations skipped via the result cache
  /// (analysis/mutant_cache.h), summed over items. On a fully warm run this
  /// equals the total mutant count — the "analysis-free" ledger.
  int mutantCacheHits = 0;
  // Artifact-store traffic of this run (util/artifact_store.h; all zero
  // when no --cache-dir store is configured). Sums across merged shards.
  int diskHits = 0;       ///< artifacts loaded instead of recomputed
  int diskStores = 0;     ///< artifacts persisted for later runs
  int diskEvictions = 0;  ///< entries dropped by the LRU byte cap
  /// Mutant-simulation cycle ledger summed over items (and, through
  /// stitch/merge, over shard fragments): scheduler transactions the
  /// per-mutant co-simulations actually executed versus transactions the
  /// divergence-driven fast path (checkpoint fast-forward + verdict
  /// saturation, analysis/mutation_analysis.h) proved unnecessary. Under
  /// XLV_REFERENCE_SIM=1 cyclesSkipped is 0.
  std::uint64_t cyclesSimulated = 0;
  std::uint64_t cyclesSkipped = 0;
  // Native-backend ledger summed over items (analysis/mutation_analysis.h):
  // shared-library compiles this run performed, compiles it avoided via the
  // memory/disk caches, and mutants that ran lock-step in batches of two or
  // more. All zero under the interpreter backend / batch size 1.
  int nativeCompiles = 0;
  int nativeCacheHits = 0;
  int batchedMutants = 0;
  double wallSeconds = 0.0;   ///< elapsed time of the whole campaign
  int threadsUsed = 1;

  bool ok() const noexcept;
  const CampaignItemResult* find(const std::string& label) const noexcept;
  /// The errored item with the lowest task id, or null when ok(). Mirrors
  /// the executor's lowest-index exception rule at the campaign level: a
  /// merged multi-shard result surfaces the same first failure the
  /// single-process run would.
  const CampaignItemResult* firstError() const noexcept;

  /// Deterministic-content equality: labels, errors and every
  /// non-timing/non-cache report field (sensors, STA binning, mutant specs,
  /// per-mutant analysis results). The single comparator behind the
  /// "bit-identical across thread counts / cache modes" checks of the
  /// sweep tests and the bench/CI self-check.
  bool sameResults(const CampaignResult& other) const noexcept;
};

/// Run every item of the spec; blocks until the campaign completes.
CampaignResult runCampaign(const CampaignSpec& spec);

/// The process exit code a completed campaign maps to: 0 when every item
/// succeeded, 3 when any item errored (the tools/xlv_campaign contract CI
/// pipelines fail on — a campaign that "completed" with zero mutants
/// simulated must not pass vacuously).
int campaignExitCode(const CampaignResult& result) noexcept;

/// The paper's full experiment matrix: every case study × both sensor
/// kinds, with `base` options applied to each item (sensorKind overridden
/// per item; analysisThreads forced to 1 when the outer pool is parallel).
CampaignSpec fullMatrixCampaign(const std::vector<ips::CaseStudy>& cases,
                                const core::FlowOptions& base, ExecutorConfig exec = {});

}  // namespace xlv::campaign
