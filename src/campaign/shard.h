// Process-level campaign sharding (the ROADMAP's multi-host scaling step).
//
// PR 1-2 parallelized a campaign within one process; this layer splits a
// CampaignSpec into N deterministic shards that run in separate processes
// (tools/xlv_campaign) and merges their outputs back into one CampaignResult
// that is bit-identical (CampaignResult::sameResults) to the single-process
// run. Three pieces:
//
//   * planner  — planShards() partitions the spec's task-id space into N
//     contiguous, weight-balanced slices. Units are whole items by default;
//     an item whose mutant count exceeds maxFragmentMutants is split into
//     MUTANT-RANGE FRAGMENTS (FlowOptions::mutantBegin/End): every fragment
//     re-runs the cheap flow prefix but analyzes only its mutant slice, with
//     global MutantResult ids, so one oversized item can span shards.
//   * runner   — runShard() executes one shard's units as an ordinary
//     in-process campaign (thread pool, caches and merge rule unchanged)
//     and tags every result with its GLOBAL task id.
//   * merger   — mergeShards() reassembles the outputs: whole items land in
//     task-id order, fragments of one item are stitched back by
//     concatenating their analysis subranges, ledgers (simSeconds /
//     goldenSeconds / wallSeconds / cache hits) are aggregated per shard,
//     and the first failure surfaced is the lowest-task-id one — exactly
//     the single-process semantics.
//
// Integrity: plans and shard outputs carry the FNV-1a fingerprint of the
// canonical spec encoding (campaign/serialize.h), so a plan or output from a
// different spec — or a different schema version — is rejected instead of
// silently merged.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.h"

namespace xlv::campaign {

/// One schedulable unit of a shard: a whole campaign item, or a mutant-range
/// fragment of one.
struct ShardUnit {
  std::size_t taskId = 0;  ///< index of the item in the full spec
  /// Fragment range [mutantBegin, mutantEnd) of the item's (variant-sliced)
  /// mutant set; 0/0 = the whole item.
  std::size_t mutantBegin = 0;
  std::size_t mutantEnd = 0;

  bool wholeItem() const noexcept { return mutantBegin == 0 && mutantEnd == 0; }
  bool operator==(const ShardUnit&) const = default;
};

struct ShardPlan {
  std::uint64_t specFnv = 0;   ///< fingerprint of encodeCampaignSpec(spec)
  std::size_t specItems = 0;   ///< item count the plan was built for
  std::vector<std::vector<ShardUnit>> shards;  ///< units in global task-id order

  int shardCount() const noexcept { return static_cast<int>(shards.size()); }
};

struct ShardPlanOptions {
  int shards = 1;
  /// When > 0, any item with more mutants than this is split into fragments
  /// of at most this many mutants (counts come from `mutantCounts`, or are
  /// probed via countFlowMutants when that is empty). 0 = never split items.
  std::size_t maxFragmentMutants = 0;
  /// Optional per-item mutant counts (size must equal the spec's item count
  /// when non-empty). Counts also weight the balance: an item or fragment
  /// contributes max(count, 1) units of weight.
  std::vector<std::size_t> mutantCounts;
};

/// Mutants the item's analysis stage will schedule: elaborate + insertion +
/// mutant-set generation/slicing, no simulation. Used by the planner to
/// split and balance; deterministic for a given (cs, opts).
std::size_t countFlowMutants(const ips::CaseStudy& cs, const core::FlowOptions& opts);

/// The flat stealable-unit plan underneath planShards, exposed for the
/// dispatcher daemon (campaign/dispatch.h): every unit in global task-id
/// order (fragments of one item in range order) with the planner's weights,
/// so a work-stealing scheduler can order its queue heaviest-first instead
/// of balancing statically.
struct DispatchUnitPlan {
  std::uint64_t specFnv = 0;
  std::vector<ShardUnit> units;
  std::vector<std::uint64_t> weights;  ///< parallel to units; >= 1 each
};

/// Build the unit list: items split into mutant-range fragments of at most
/// maxFragmentMutants (0 = never split), weighted by mutant count. Counts
/// come from `mutantCounts` when non-empty (size must match the spec's item
/// count, else std::invalid_argument), otherwise via countFlowMutants when
/// fragmentation is requested.
DispatchUnitPlan planDispatchUnits(const CampaignSpec& spec,
                                   std::size_t maxFragmentMutants,
                                   const std::vector<std::size_t>& mutantCounts = {});

/// Deterministically partition the spec into opt.shards contiguous,
/// weight-balanced unit slices. Throws std::invalid_argument on a malformed
/// request (shards < 1, mutantCounts size mismatch).
ShardPlan planShards(const CampaignSpec& spec, const ShardPlanOptions& opt);

/// One shard's execution record: an ordinary CampaignResult whose items are
/// the shard's units (taskIds global, shard-local order) plus the plan
/// coordinates needed to validate a merge.
struct ShardOutput {
  std::uint64_t specFnv = 0;
  int shardIndex = -1;
  int shardCount = 0;
  std::vector<ShardUnit> units;  ///< parallel to result.items
  CampaignResult result;
};

/// Execute shard `shardIndex` of the plan in this process. Throws
/// std::invalid_argument when the plan does not match the spec (fingerprint
/// or item count) or the index is out of range.
ShardOutput runShard(const CampaignSpec& spec, const ShardPlan& plan, int shardIndex);

/// Execute an arbitrary unit list as shard `shardIndex` of `shardCount` in
/// this process, tagging every result with its GLOBAL task id. runShard is
/// a plan-validated wrapper; the dispatcher daemon calls this directly with
/// one stealable unit per task (shardIndex = task index, shardCount = task
/// count, so each streamed result is a mergeable one-unit ShardOutput).
ShardOutput runShardUnits(const CampaignSpec& spec, const std::vector<ShardUnit>& units,
                          int shardIndex, int shardCount);

/// Merge shard outputs back into one CampaignResult bit-identical
/// (sameResults) to runCampaign(spec). Every shard index of the plan must
/// be covered; validates fingerprints, coverage (every task id covered,
/// fragment ranges contiguous from 0) and fragment report sizes, throwing
/// std::invalid_argument with a diagnostic otherwise.
///
/// Retry tolerance: a double-submitted shard or fragment (the dispatcher
/// re-queues work lost to a crashed worker, and a retry can race its dead
/// predecessor's already-delivered result) is deduplicated by fragment id —
/// (taskId, mutantBegin, mutantEnd) — keeping the copy from the
/// lowest-indexed shard. Duplicates must agree on label, error and
/// per-mutant results (retries are bit-identical by construction; a
/// disagreement means spec skew and fails the merge). Deduplicated copies
/// still contribute to the work ledgers: the simulation time was truly
/// spent twice.
CampaignResult mergeShards(const CampaignSpec& spec, const std::vector<ShardOutput>& outputs);

// --- wire format (util/codec.h; versioned with kCampaignCodecVersion) -------
std::string encodeShardPlan(const ShardPlan& plan);
ShardPlan decodeShardPlan(std::string_view data);
std::string encodeShardOutput(const ShardOutput& output);
ShardOutput decodeShardOutput(std::string_view data);

/// Canonical spec fingerprint: util::fnv1a64 over encodeCampaignSpec(spec).
std::uint64_t campaignSpecFnv(const CampaignSpec& spec);

/// Built-in specs shared by tools/xlv_campaign, bench/campaign_shard and CI:
///   "smoke"  — the PR 2 acceptance sweep: 2 IPs (Filter, DSP) x 2 sensor
///              kinds x 2 STA corners, quick cycle budget (8 items);
///   "single" — one Filter/Counter item with a full mutant set (the
///              mutant-range fragmentation demo).
/// Throws std::invalid_argument on an unknown name.
CampaignSpec builtinCampaignSpec(const std::string& preset);
std::vector<std::string> builtinCampaignSpecNames();

}  // namespace xlv::campaign
