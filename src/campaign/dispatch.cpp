#include "campaign/dispatch.h"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <mutex>
#include <numeric>
#include <thread>

#include "campaign/serialize.h"
#include "util/codec.h"
#include "util/fault_point.h"
#include "util/log.h"
#include "util/subprocess.h"

namespace xlv::campaign {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

// --- frame transport ---------------------------------------------------------

namespace {

constexpr std::string_view kFrameMagic = "xlvf ";
/// A frame bigger than this is certainly a corrupted length, not a result
/// (the largest real document is one shard's campaign result).
constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 30;

}  // namespace

std::string frameWire(std::string_view doc) {
  std::string out(kFrameMagic);
  out += std::to_string(doc.size());
  out += '\n';
  out.append(doc);
  return out;
}

void FrameReader::feed(std::string_view data) { buffer_.append(data); }

bool FrameReader::next(std::string& doc) {
  // Reclaim consumed prefix once it dominates the buffer, so a long-lived
  // worker stream does not grow without bound.
  if (pos_ > 4096 && pos_ > buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  const std::string_view rest = std::string_view(buffer_).substr(pos_);
  if (rest.empty()) return false;
  const std::size_t nl = rest.find('\n');
  if (nl == std::string_view::npos) {
    // "xlvf " + a 20-digit length is the longest legal header.
    if (rest.size() > kFrameMagic.size() + 20) {
      throw util::DecodeError("frame: unterminated header");
    }
    // Reject a wrong magic as soon as enough bytes exist to know.
    if (rest.substr(0, kFrameMagic.size()) !=
        kFrameMagic.substr(0, std::min(rest.size(), kFrameMagic.size()))) {
      throw util::DecodeError("frame: bad magic");
    }
    return false;
  }
  const std::string_view header = rest.substr(0, nl);
  if (header.substr(0, kFrameMagic.size()) != kFrameMagic) {
    throw util::DecodeError("frame: bad magic in header '" + std::string(header) + "'");
  }
  const std::string_view digits = header.substr(kFrameMagic.size());
  if (digits.empty()) throw util::DecodeError("frame: missing length");
  std::size_t len = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      throw util::DecodeError("frame: non-numeric length '" + std::string(digits) + "'");
    }
    len = len * 10 + static_cast<std::size_t>(c - '0');
    if (len > kMaxFrameBytes) {
      throw util::DecodeError("frame: implausible length " + std::string(digits));
    }
  }
  // The per-connection cap rejects the frame from its header alone — an
  // untrusted client cannot make the server buffer the body first.
  if (len > maxFrameBytes_) throw FrameCapExceeded(len, maxFrameBytes_);
  if (rest.size() - nl - 1 < len) return false;
  doc.assign(rest.substr(nl + 1, len));
  pos_ += nl + 1 + len;
  return true;
}

// --- work-stealing task queue ------------------------------------------------

TaskQueue::TaskQueue(const DispatchUnitPlan& plan) {
  tasks_.reserve(plan.units.size());
  for (std::size_t i = 0; i < plan.units.size(); ++i) {
    DispatchTask t;
    t.index = i;
    t.unit = plan.units[i];
    t.weight = i < plan.weights.size() ? std::max<std::uint64_t>(plan.weights[i], 1) : 1;
    tasks_.push_back(t);
  }
  states_.assign(tasks_.size(), State::Pending);
  pending_.resize(tasks_.size());
  std::iota(pending_.begin(), pending_.end(), std::size_t{0});
  // Heaviest-first (LPT): the classic work-stealing order — mispredicting a
  // big fragment late is what wrecks a static plan, so big ones go first
  // and small ones backfill. Index-ascending tie-break keeps the order a
  // pure function of the plan.
  std::stable_sort(pending_.begin(), pending_.end(), [&](std::size_t a, std::size_t b) {
    if (tasks_[a].weight != tasks_[b].weight) return tasks_[a].weight > tasks_[b].weight;
    return a < b;
  });
}

const DispatchTask& TaskQueue::claim() {
  if (pending_.empty()) throw std::logic_error("TaskQueue::claim: nothing pending");
  const std::size_t idx = pending_.front();
  pending_.erase(pending_.begin());
  states_[idx] = State::InFlight;
  ++tasks_[idx].attempts;
  return tasks_[idx];
}

void TaskQueue::requeue(std::size_t taskIndex) {
  if (taskIndex >= tasks_.size() || states_[taskIndex] != State::InFlight) {
    throw std::logic_error("TaskQueue::requeue: task " + std::to_string(taskIndex) +
                           " is not in flight");
  }
  states_[taskIndex] = State::Pending;
  // Front of the queue: the lost unit already waited a full turn, and it is
  // statistically the heaviest thing outstanding (it was claimed earliest).
  pending_.insert(pending_.begin(), taskIndex);
}

bool TaskQueue::complete(std::size_t taskIndex) {
  if (taskIndex >= tasks_.size()) {
    throw std::logic_error("TaskQueue::complete: task " + std::to_string(taskIndex) +
                           " out of range");
  }
  // A retired task's late genuine result reads as a duplicate: its slot is
  // already represented (quarantine synthesis or bisected halves).
  if (states_[taskIndex] == State::Completed || states_[taskIndex] == State::Retired) {
    return false;
  }
  if (states_[taskIndex] == State::Pending) {
    // A dead worker's drained result completed a unit that was already
    // re-queued; pull it back out of the pending order.
    pending_.erase(std::remove(pending_.begin(), pending_.end(), taskIndex),
                   pending_.end());
  }
  states_[taskIndex] = State::Completed;
  ++completed_;
  return true;
}

bool TaskQueue::isCompleted(std::size_t taskIndex) const {
  return taskIndex < states_.size() && states_[taskIndex] == State::Completed;
}

std::size_t TaskQueue::addTask(const ShardUnit& unit, std::uint64_t weight) {
  DispatchTask t;
  t.index = tasks_.size();
  t.unit = unit;
  t.weight = std::max<std::uint64_t>(weight, 1);
  tasks_.push_back(t);
  states_.push_back(State::Pending);
  // Front of the queue, like a requeue: the parent fragment this half came
  // from already waited its full turns.
  pending_.insert(pending_.begin(), t.index);
  return tasks_.back().index;
}

void TaskQueue::retire(std::size_t taskIndex) {
  if (taskIndex >= tasks_.size() || states_[taskIndex] == State::Completed ||
      states_[taskIndex] == State::Retired) {
    throw std::logic_error("TaskQueue::retire: task " + std::to_string(taskIndex) +
                           " is not retirable");
  }
  if (states_[taskIndex] == State::Pending) {
    pending_.erase(std::remove(pending_.begin(), pending_.end(), taskIndex),
                   pending_.end());
  }
  states_[taskIndex] = State::Retired;
  ++retired_;
}

bool TaskQueue::isRetired(std::size_t taskIndex) const {
  return taskIndex < states_.size() && states_[taskIndex] == State::Retired;
}

// --- shared helpers ----------------------------------------------------------

namespace {

bool writeFd(int fd, std::string_view data) noexcept {
  // Chaos hook on the worker-side frame write: a "fail" loses the frame
  // outright, a "short" delivers a prefix (the peer's FrameReader sees a
  // truncated stream). Either way writeFd reports failure, so the worker
  // takes its real pipe-write-failed exit path.
  switch (util::faultPoint("frame.write")) {
    case util::FaultAction::Fail:
      return false;
    case util::FaultAction::Short:
      if (!data.empty()) {
        const std::string_view half = data.substr(0, data.size() / 2);
        std::size_t off = 0;
        while (off < half.size()) {
          const ssize_t n = ::write(fd, half.data() + off, half.size() - off);
          if (n < 0) {
            if (errno == EINTR) continue;
            break;
          }
          off += static_cast<std::size_t>(n);
        }
      }
      return false;
    case util::FaultAction::None:
      break;
  }
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void ignoreSigpipe() {
  // A dead peer must surface as EPIPE from write(), not kill the process;
  // idempotent, so both the dispatcher and every worker call it on entry.
  ::signal(SIGPIPE, SIG_IGN);
}

}  // namespace

FrameRead readFrameBlocking(int fd, FrameReader& reader, std::string& doc,
                            int* errnoOut) {
  if (errnoOut != nullptr) *errnoOut = 0;
  if (reader.next(doc)) return FrameRead::Frame;
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      // NOT an EOF: a failed read means the bytes may still be in flight
      // somewhere, and pretending the peer finished cleanly silently drops
      // whatever unit was riding this stream.
      if (errnoOut != nullptr) *errnoOut = errno;
      return FrameRead::Error;
    }
    if (n == 0) return FrameRead::Eof;
    reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    if (reader.next(doc)) return FrameRead::Frame;
  }
}

void OutboundBuffer::enqueue(std::string_view data) {
  // Reclaim the consumed prefix once it dominates, same policy as
  // FrameReader: a long-lived connection must not grow without bound.
  if (pos_ > 4096 && pos_ > buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(data);
}

bool OutboundBuffer::flushTo(int fd) noexcept {
  // Chaos hook on the dispatcher/server-side frame write: "fail" reports
  // the connection dead without writing; "short" delivers half of what is
  // queued first, so the peer sees a truncated stream. Both exercise the
  // same recovery the real EPIPE path takes.
  util::FaultAction fault = util::FaultAction::None;
  std::size_t shortBudget = 0;
  if (pos_ < buffer_.size()) {
    fault = util::faultPoint("frame.write");
    if (fault == util::FaultAction::Fail) return false;
    if (fault == util::FaultAction::Short) shortBudget = (buffer_.size() - pos_) / 2;
  }
  while (pos_ < buffer_.size()) {
    if (fault == util::FaultAction::Short && shortBudget == 0) return false;
    std::size_t want = buffer_.size() - pos_;
    if (fault == util::FaultAction::Short) want = std::min(want, shortBudget);
    const ssize_t n = ::write(fd, buffer_.data() + pos_, want);
    if (n > 0) {
      pos_ += static_cast<std::size_t>(n);
      if (fault == util::FaultAction::Short) shortBudget -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // EPIPE (dead peer) or another fatal write error
  }
  buffer_.clear();
  pos_ = 0;
  return true;
}

long envLongStrict(const char* name, long fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) {
    throw std::invalid_argument(std::string(name) + "='" + s +
                                "' is not a whole decimal integer");
  }
  return v;
}

int resolveWorkerCount(int requested) {
  if (requested > 0) return requested;
  if (requested < 0) return 1;
  const char* s = std::getenv("XLV_WORKERS");
  if (s != nullptr && *s != '\0') {
    // Strict parse, unlike XLV_THREADS' warn-and-degrade: a worker pool is
    // what the user explicitly asked the daemon for, so a typo should stop
    // the run, not silently fan out differently.
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE || v < 1 || v > 1024) {
      throw std::invalid_argument("XLV_WORKERS='" + std::string(s) +
                                  "' is not an integer in [1, 1024]");
    }
    return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// --- worker ------------------------------------------------------------------

namespace {

/// Fault hooks are armed only for one worker slot's ORIGINAL process: the
/// respawned generation must recover, which is exactly what the fault test
/// asserts.
bool faultHookArmed(int workerIndex, int generation) {
  if (generation != 0) return false;
  return envLongStrict("XLV_TEST_FAULT_WORKER", 0) == static_cast<long>(workerIndex);
}

/// Poison-unit hook: unlike the per-slot hooks above this one is armed for
/// EVERY worker and every generation, because a poison unit by definition
/// kills whoever runs it.  The server's quarantine path is what the matching
/// test asserts, so the hook must survive respawns and work stealing.
void maybeInjectPoison(const ShardUnit& unit) {
  const long item = envLongStrict("XLV_TEST_POISON_ITEM", -1);
  if (item < 0 || unit.taskId != static_cast<std::size_t>(item)) return;
  const long mutant = envLongStrict("XLV_TEST_POISON_MUTANT", -1);
  if (mutant < 0) return;
  const bool hit = unit.wholeItem() ||
                   (unit.mutantBegin <= static_cast<std::size_t>(mutant) &&
                    static_cast<std::size_t>(mutant) < unit.mutantEnd);
  if (hit) ::raise(SIGKILL);
}

void maybeInjectFault(int workerIndex, int generation, std::uint64_t itemsDone) {
  if (!faultHookArmed(workerIndex, generation)) return;
  const long dieAfter = envLongStrict("XLV_TEST_DIE_AFTER_ITEMS", -1);
  if (dieAfter >= 0 && itemsDone >= static_cast<std::uint64_t>(dieAfter)) {
    ::raise(SIGKILL);  // crash mid-shard, no unwinding, no result
  }
  const long exitAfter = envLongStrict("XLV_TEST_EXIT_AFTER_ITEMS", -1);
  if (exitAfter >= 0 && itemsDone >= static_cast<std::uint64_t>(exitAfter)) {
    ::_exit(9);  // orderly-looking nonzero exit without a result
  }
  const long hangAfter = envLongStrict("XLV_TEST_HANG_AFTER_ITEMS", -1);
  if (hangAfter >= 0 && itemsDone >= static_cast<std::uint64_t>(hangAfter)) {
    for (;;) ::pause();  // silent: no heartbeats, no result, never returns
  }
}

}  // namespace

int runDispatchWorker(const CampaignSpec* defaultSpec, const DispatchWorkerOptions& opt) {
  ignoreSigpipe();
  const std::uint64_t defaultFnv = defaultSpec != nullptr ? campaignSpecFnv(*defaultSpec) : 0;
  const std::uint64_t index = static_cast<std::uint64_t>(opt.workerIndex);
  const std::uint64_t generation = static_cast<std::uint64_t>(opt.generation);
  FrameReader reader;
  std::uint64_t itemsDone = 0;
  // Decoded specs served from handoff files, keyed by path; the fingerprint
  // re-check below makes a stale cache entry (path re-used for a different
  // campaign) a refusal, never a silent wrong-spec run.
  std::map<std::string, CampaignSpec> specCache;

  auto sendStatus = [&](const char* state) {
    StatusFrame st;
    st.workerIndex = index;
    st.generation = generation;
    st.itemsDone = itemsDone;
    st.state = state;
    return writeFd(opt.outFd, frameWire(encodeStatusFrame(st)));
  };

  if (!sendStatus("ready")) return 6;

  for (;;) {
    std::string doc;
    FrameRead got = FrameRead::Eof;
    int readErrno = 0;
    try {
      got = readFrameBlocking(opt.inFd, reader, doc, &readErrno);
    } catch (const util::DecodeError& e) {
      XLV_ERROR("campaignd") << "worker " << index << ": corrupt frame stream: " << e.what();
      return 7;
    }
    if (got == FrameRead::Eof) return 0;  // dispatcher closed our stdin: clean shutdown
    if (got == FrameRead::Error) {
      XLV_ERROR("campaignd") << "worker " << index
                             << ": stdin read failed: " << std::strerror(readErrno);
      return 11;
    }

    SubmitFrame submit;
    try {
      submit = decodeSubmitFrame(doc);
    } catch (const util::DecodeError& e) {
      // Version skew or an unexpected frame kind; refusing to talk beats
      // running a unit from a different schema.
      XLV_ERROR("campaignd") << "worker " << index << ": bad submit frame: " << e.what();
      return 7;
    }
    if (submit.shutdown) return 0;

    // Resolve the unit's spec: the startup --spec for an empty specPath
    // (single-campaign run mode), a cached/loaded handoff file otherwise
    // (the server multiplexing many campaigns over one pool).
    const CampaignSpec* spec = nullptr;
    std::uint64_t fnv = 0;
    if (submit.specPath.empty()) {
      spec = defaultSpec;
      fnv = defaultFnv;
      if (spec == nullptr) {
        XLV_ERROR("campaignd") << "worker " << index
                               << ": submit without specPath but no startup --spec";
        return 8;
      }
    } else {
      auto it = specCache.find(submit.specPath);
      if (it == specCache.end()) {
        try {
          std::ifstream in(submit.specPath, std::ios::binary);
          std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
          if (!in && bytes.empty()) {
            throw std::runtime_error("cannot read " + submit.specPath);
          }
          it = specCache.emplace(submit.specPath, decodeCampaignSpec(bytes)).first;
        } catch (const std::exception& e) {
          XLV_ERROR("campaignd") << "worker " << index
                                 << ": spec handoff load failed: " << e.what();
          return 8;
        }
      }
      spec = &it->second;
      fnv = campaignSpecFnv(*spec);
    }
    if (submit.specFnv != fnv) {
      XLV_ERROR("campaignd") << "worker " << index
                             << ": submit fingerprint mismatch (spec skew)";
      return 8;
    }

    maybeInjectPoison(submit.unit);
    maybeInjectFault(opt.workerIndex, opt.generation, itemsDone);

    if (!sendStatus("working")) return 6;

    // Heartbeats ride a helper thread for the duration of the unit; it is
    // the only stdout writer while it lives (joined before the result goes
    // out), so no write interleaving is possible.
    std::mutex beatMutex;
    std::condition_variable beatCv;
    bool beatStop = false;
    std::thread beater([&] {
      std::unique_lock<std::mutex> lock(beatMutex);
      const auto interval = std::chrono::milliseconds(std::max(1, opt.heartbeatIntervalMs));
      while (!beatCv.wait_for(lock, interval, [&] { return beatStop; })) {
        HeartbeatFrame beat;
        beat.workerIndex = index;
        beat.generation = generation;
        beat.seq = submit.seq;
        beat.itemsDone = itemsDone;
        lock.unlock();
        writeFd(opt.outFd, frameWire(encodeHeartbeatFrame(beat)));
        lock.lock();
      }
    });
    auto stopBeater = [&] {
      {
        std::lock_guard<std::mutex> lock(beatMutex);
        beatStop = true;
      }
      beatCv.notify_all();
      beater.join();
    };

    ResultFrame result;
    result.campaignId = submit.campaignId;
    result.seq = submit.seq;
    result.taskIndex = submit.taskIndex;
    result.attempt = submit.attempt;
    try {
      result.output =
          runShardUnits(*spec, {submit.unit}, static_cast<int>(submit.taskIndex),
                        static_cast<int>(submit.taskCount));
    } catch (const std::exception& e) {
      stopBeater();
      // Item-level failures travel INSIDE the result; reaching here means
      // the unit itself was malformed (task id outside the spec). The
      // dispatcher sees the death and re-queues; the attempt budget stops
      // an unrunnable unit from looping forever.
      XLV_ERROR("campaignd") << "worker " << index << ": unit failed: " << e.what();
      return 10;
    }
    stopBeater();

    if (!writeFd(opt.outFd, frameWire(encodeResultFrame(result)))) return 6;
    ++itemsDone;
    if (!sendStatus("ready")) return 6;
  }
}

// --- dispatcher --------------------------------------------------------------

namespace {

/// Spec handoff file shared by all workers, removed when the dispatch ends.
struct SpecFileGuard {
  fs::path path;
  ~SpecFileGuard() {
    if (!path.empty()) {
      std::error_code ec;
      fs::remove(path, ec);
    }
  }
};

struct WorkerSlot {
  util::Subprocess proc;
  FrameReader reader;
  OutboundBuffer out;  ///< frames queued for the worker's non-blocking stdin
  int generation = 0;
  int respawns = 0;
  bool ready = false;     ///< announced ready, waiting for work
  bool busy = false;      ///< accepted a submit that has not completed
  bool retired = false;   ///< dead with no respawn budget (or shut down)
  bool timedOut = false;  ///< we SIGKILLed it for heartbeat silence
  std::size_t taskIndex = 0;
  Clock::time_point lastBeat{};
};

}  // namespace

DispatchResult runDispatcher(const CampaignSpec& spec, const DispatchOptions& opt) {
  if (opt.workerCommand.empty()) {
    throw std::invalid_argument("runDispatcher: workerCommand must not be empty");
  }
  if (opt.heartbeatIntervalMs <= 0 || opt.heartbeatTimeoutMs <= 0) {
    throw std::invalid_argument("runDispatcher: heartbeat interval/timeout must be > 0");
  }
  if (opt.maxTaskAttempts < 1) {
    throw std::invalid_argument("runDispatcher: maxTaskAttempts must be >= 1");
  }
  ignoreSigpipe();

  DispatchResult res;
  DispatchLedger& led = res.ledger;

  const DispatchUnitPlan plan =
      planDispatchUnits(spec, opt.maxFragmentMutants, opt.mutantCounts);
  TaskQueue queue(plan);
  led.tasksTotal = queue.taskCount();
  if (queue.taskCount() == 0) {
    res.result.name = spec.name;
    return res;
  }
  const std::uint64_t taskCount = queue.taskCount();

  const int workers = resolveWorkerCount(opt.workers);
  led.workersRequested = static_cast<std::uint64_t>(workers);

  // Ship the spec once through a file; every worker decodes the same bytes,
  // and the fingerprint in each submit frame re-checks the pairing.
  SpecFileGuard specFile;
  {
    const fs::path dir = opt.specDir.empty() ? fs::temp_directory_path() : fs::path(opt.specDir);
    std::error_code ec;
    fs::create_directories(dir, ec);
    specFile.path = dir / ("xlv-campaignd-spec-" + std::to_string(::getpid()) + "-" +
                           std::to_string(plan.specFnv) + ".xlv");
    std::ofstream out(specFile.path, std::ios::binary | std::ios::trunc);
    out << encodeCampaignSpec(spec);
    if (!out) {
      throw DispatchError("cannot write spec handoff file " + specFile.path.string());
    }
  }

  std::vector<WorkerSlot> slots(static_cast<std::size_t>(workers));
  auto spawnSlot = [&](std::size_t i) {
    WorkerSlot& s = slots[i];
    std::vector<std::string> argv = opt.workerCommand;
    argv.push_back("--spec");
    argv.push_back(specFile.path.string());
    argv.push_back("--index");
    argv.push_back(std::to_string(i));
    argv.push_back("--generation");
    argv.push_back(std::to_string(s.generation));
    argv.push_back("--heartbeat-ms");
    argv.push_back(std::to_string(opt.heartbeatIntervalMs));
    const util::SubprocessEnv env = {
        {"XLV_WORKER_INDEX", std::to_string(i)},
        {"XLV_WORKER_GENERATION", std::to_string(s.generation)},
    };
    // Chaos hook, same contract as the campaign service's spawnWorker: a
    // "fail" yields a never-started slot on the normal respawn path.
    s.proc = util::faultPoint("worker.spawn") == util::FaultAction::None
                 ? util::Subprocess::spawn(argv, env)
                 : util::Subprocess{};
    s.reader = FrameReader{};
    s.out = OutboundBuffer{};
    s.ready = false;
    s.busy = false;
    s.timedOut = false;
    if (!s.proc.started()) {
      s.retired = true;
      XLV_ERROR("campaignd") << "worker " << i << ": spawn failed";
      return false;
    }
    // Both pipe ends go non-blocking: all outbound bytes ride s.out (drained
    // on POLLOUT), so a worker with a full stdin pipe can never wedge the
    // single-threaded loop while it is itself blocked writing a result.
    util::setNonBlocking(s.proc.stdinFd());
    util::setNonBlocking(s.proc.stdoutFd());
    s.lastBeat = Clock::now();
    ++led.workersSpawned;
    return true;
  };
  std::size_t live = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (spawnSlot(i)) ++live;
  }
  if (live == 0) throw DispatchError("could not spawn any worker process");

  std::vector<ShardOutput> outputs(queue.taskCount());
  std::vector<char> haveOutput(queue.taskCount(), 0);
  std::uint64_t seqCounter = 0;

  auto requeueLost = [&](WorkerSlot& s, std::size_t slotIndex, const std::string& reason) {
    if (!s.busy) return;
    s.busy = false;
    if (queue.isCompleted(s.taskIndex)) return;  // its result was drained in time
    const DispatchTask& t = queue.task(s.taskIndex);
    if (static_cast<int>(t.attempts) >= opt.maxTaskAttempts) {
      throw DispatchError("task " + std::to_string(t.index) + " (item " +
                          std::to_string(t.unit.taskId) + ") lost after " +
                          std::to_string(t.attempts) + " attempts (last: " + reason + ")");
    }
    queue.requeue(s.taskIndex);
    RequeueRecord rec;
    rec.taskIndex = t.index;
    rec.unit = t.unit;
    rec.attempt = t.attempts;
    rec.reason = reason;
    rec.workerIndex = slotIndex;
    rec.generation = static_cast<std::uint64_t>(s.generation);
    led.requeuedShards.push_back(rec);
    XLV_WARN("campaignd") << "re-queued task " << t.index << " (attempt " << t.attempts
                          << " lost to worker " << slotIndex << ": " << reason << ")";
  };

  // One frame from one worker; throws util::DecodeError on a corrupt or
  // out-of-protocol document (the caller kills the worker).
  auto handleFrame = [&](WorkerSlot& s, const std::string& doc) {
    const std::string tag = util::peekDocumentTag(doc);
    if (tag == kStatusFrameTag) {
      const StatusFrame st = decodeStatusFrame(doc);
      s.lastBeat = Clock::now();
      if (st.state == "ready") {
        s.ready = true;
      }
      return;
    }
    if (tag == kHeartbeatFrameTag) {
      decodeHeartbeatFrame(doc);
      s.lastBeat = Clock::now();
      ++led.heartbeats;
      return;
    }
    if (tag == kResultFrameTag) {
      ResultFrame rf = decodeResultFrame(doc);
      s.lastBeat = Clock::now();
      if (rf.taskIndex >= taskCount) {
        throw util::DecodeError("result for unknown task " + std::to_string(rf.taskIndex));
      }
      if (queue.complete(rf.taskIndex)) {
        outputs[rf.taskIndex] = std::move(rf.output);
        haveOutput[rf.taskIndex] = 1;
        ++led.tasksCompleted;
      } else {
        // A retry raced its SIGKILLed predecessor's drained result; both
        // copies are bit-identical, so dropping one is safe by design.
        ++led.duplicateResults;
      }
      if (s.busy && s.taskIndex == rf.taskIndex) s.busy = false;
      return;
    }
    throw util::DecodeError("unexpected frame '" + tag + "' from a worker");
  };

  auto drainReader = [&](WorkerSlot& s) {
    std::string doc;
    while (s.reader.next(doc)) handleFrame(s, doc);
  };

  // Death of a worker process: reap it, salvage any result already in the
  // pipe, re-queue what it was running, respawn the slot if budget remains.
  auto handleDeath = [&](std::size_t i, const char* reasonHint) {
    WorkerSlot& s = slots[i];
    try {
      drainReader(s);
    } catch (const util::DecodeError&) {
      // A crash can truncate mid-frame; whatever did not parse is lost work
      // the re-queue below recovers.
    }
    // A failed submit write lands here while the process may still be alive
    // (its stream is desynced either way) — put it down before reaping, or
    // wait() blocks the dispatcher on a live child.
    if (s.proc.running()) s.proc.kill(SIGKILL);
    s.proc.wait();
    std::string reason = reasonHint != nullptr ? reasonHint
                         : s.timedOut          ? "heartbeat-timeout"
                         : s.proc.termSignal() != 0 ? "worker-signal"
                                                    : "worker-exit";
    XLV_WARN("campaignd") << "worker " << i << " gen " << s.generation << " died ("
                          << reason << ", exit=" << s.proc.exitCode()
                          << ", signal=" << s.proc.termSignal() << ")";
    requeueLost(s, i, reason);
    s.ready = false;
    if (!queue.done() && s.respawns < opt.maxWorkerRespawns) {
      ++s.respawns;
      ++s.generation;
      ++led.workerRespawns;
      spawnSlot(i);
    } else {
      s.retired = true;
    }
  };

  while (!queue.done()) {
    // Assignment: hand the heaviest pending unit to every idle worker. The
    // steal is the claim — workers that finish early come back ready and
    // immediately pull the next unit off the shared queue.
    for (std::size_t i = 0; i < slots.size(); ++i) {
      WorkerSlot& s = slots[i];
      if (s.retired || !s.ready || s.busy || !queue.hasPending()) continue;
      const DispatchTask& t = queue.claim();
      SubmitFrame submit;
      submit.specFnv = plan.specFnv;
      submit.seq = ++seqCounter;
      submit.taskIndex = t.index;
      submit.taskCount = taskCount;
      submit.attempt = t.attempts - 1;
      submit.unit = t.unit;
      s.ready = false;
      s.busy = true;
      s.taskIndex = t.index;
      s.lastBeat = Clock::now();
      // Queue + opportunistic flush, never a blocking write: leftover bytes
      // wait for POLLOUT in the poll below.
      s.out.enqueue(frameWire(encodeSubmitFrame(submit)));
      if (!s.out.flushTo(s.proc.stdinFd())) {
        // EPIPE: the worker died between frames; its EOF will be handled
        // below, but the unit must not wait for that.
        handleDeath(i, "submit-write-failed");
        continue;
      }
      ++led.submissions;
    }

    if (queue.done()) break;

    bool anyAlive = false;
    std::vector<pollfd> fds;
    std::vector<std::size_t> fdSlot;
    std::vector<char> fdIsStdin;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].retired || !slots[i].proc.started()) continue;
      anyAlive = true;
      fds.push_back(pollfd{slots[i].proc.stdoutFd(), POLLIN, 0});
      fdSlot.push_back(i);
      fdIsStdin.push_back(0);
      // Re-arm the submit path only while bytes are actually queued; an
      // always-armed POLLOUT on an empty buffer would busy-spin the loop.
      if (!slots[i].out.empty() && slots[i].proc.stdinFd() >= 0) {
        fds.push_back(pollfd{slots[i].proc.stdinFd(), POLLOUT, 0});
        fdSlot.push_back(i);
        fdIsStdin.push_back(1);
      }
    }
    if (!anyAlive) {
      throw DispatchError("all workers lost with " +
                          std::to_string(queue.taskCount() - queue.completedCount()) +
                          " tasks unfinished");
    }

    const int pollMs = std::clamp(opt.heartbeatTimeoutMs / 4, 10, 100);
    const int got = ::poll(fds.data(), fds.size(), pollMs);
    if (got < 0 && errno != EINTR) {
      throw DispatchError(std::string("poll failed: ") + std::strerror(errno));
    }

    for (std::size_t k = 0; k < fds.size(); ++k) {
      const std::size_t i = fdSlot[k];
      WorkerSlot& s = slots[i];
      if (s.retired) continue;  // a handleDeath above may have retired it
      if (fdIsStdin[k]) {
        if ((fds[k].revents & (POLLOUT | POLLHUP | POLLERR)) == 0) continue;
        if (!s.out.flushTo(s.proc.stdinFd())) {
          handleDeath(i, "submit-write-failed");
        }
        continue;
      }
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      char buf[65536];
      const ssize_t n = ::read(s.proc.stdoutFd(), buf, sizeof buf);
      if (n > 0) {
        s.reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        try {
          drainReader(s);
        } catch (const util::DecodeError& e) {
          XLV_ERROR("campaignd") << "worker " << i << ": corrupt stream: " << e.what();
          s.proc.kill(SIGKILL);
          handleDeath(i, "protocol-error");
        }
      } else if (n == 0) {
        handleDeath(i, nullptr);
      } else if (errno != EINTR && errno != EAGAIN) {
        handleDeath(i, nullptr);
      }
    }

    // Hang detection: a busy worker silent past the timeout gets SIGKILLed;
    // the EOF shows up on the next poll and runs the normal death path
    // (which salvages any result racing the kill through the pipe).
    const auto now = Clock::now();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      WorkerSlot& s = slots[i];
      if (s.retired || !s.busy || s.timedOut) continue;
      const auto silentMs =
          std::chrono::duration_cast<std::chrono::milliseconds>(now - s.lastBeat).count();
      if (silentMs > opt.heartbeatTimeoutMs) {
        XLV_WARN("campaignd") << "worker " << i << " silent for " << silentMs
                              << " ms on task " << s.taskIndex << "; killing";
        s.timedOut = true;
        ++led.workersKilled;
        s.proc.kill(SIGKILL);
      }
    }
  }

  // Clean shutdown: an explicit frame plus stdin EOF, then a short grace
  // before escalating to SIGKILL (the slot destructor would anyway).
  for (std::size_t i = 0; i < slots.size(); ++i) {
    WorkerSlot& s = slots[i];
    if (s.retired || !s.proc.started()) continue;
    SubmitFrame bye;
    bye.specFnv = plan.specFnv;
    bye.seq = ++seqCounter;
    bye.shutdown = true;
    s.out.enqueue(frameWire(encodeSubmitFrame(bye)));
    // Best-effort drain of the non-blocking pipe: an idle worker accepts
    // the few bye bytes immediately, and stdin EOF below is an equally
    // clean shutdown signal if it does not.
    const auto byeDeadline = Clock::now() + std::chrono::milliseconds(200);
    while (!s.out.empty() && Clock::now() < byeDeadline) {
      if (!s.out.flushTo(s.proc.stdinFd())) break;
      if (!s.out.empty()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    s.proc.closeStdin();
  }
  const auto grace = Clock::now() + std::chrono::seconds(2);
  for (WorkerSlot& s : slots) {
    if (s.retired || !s.proc.started()) continue;
    while (s.proc.running() && Clock::now() < grace) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (s.proc.running()) s.proc.kill(SIGKILL);
    s.proc.wait();
  }

  std::vector<ShardOutput> collected;
  collected.reserve(outputs.size());
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    if (!haveOutput[i]) {
      throw DispatchError("task " + std::to_string(i) + " completed without an output");
    }
    collected.push_back(std::move(outputs[i]));
  }
  res.result = mergeShards(spec, collected);
  XLV_INFO("campaignd") << "dispatched " << led.tasksTotal << " tasks to " << workers
                        << " workers: " << led.submissions << " submissions, "
                        << led.requeuedShards.size() << " re-queues, "
                        << led.duplicateResults << " duplicate results";
  return res;
}

// --- ledger JSON -------------------------------------------------------------

std::string encodeDispatchLedgerJson(const DispatchLedger& ledger) {
  std::string out = "{\n";
  auto num = [&](const char* key, std::uint64_t v, bool comma = true) {
    out += "  \"";
    out += key;
    out += "\": ";
    out += std::to_string(v);
    out += comma ? ",\n" : "\n";
  };
  num("tasksTotal", ledger.tasksTotal);
  num("tasksCompleted", ledger.tasksCompleted);
  num("submissions", ledger.submissions);
  num("duplicateResults", ledger.duplicateResults);
  num("workersRequested", ledger.workersRequested);
  num("workersSpawned", ledger.workersSpawned);
  num("workerRespawns", ledger.workerRespawns);
  num("workersKilled", ledger.workersKilled);
  num("heartbeats", ledger.heartbeats);
  out += "  \"requeuedShards\": [";
  for (std::size_t i = 0; i < ledger.requeuedShards.size(); ++i) {
    const RequeueRecord& r = ledger.requeuedShards[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"taskIndex\": " + std::to_string(r.taskIndex);
    out += ", \"itemId\": " + std::to_string(r.unit.taskId);
    out += ", \"mutantBegin\": " + std::to_string(r.unit.mutantBegin);
    out += ", \"mutantEnd\": " + std::to_string(r.unit.mutantEnd);
    out += ", \"attempt\": " + std::to_string(r.attempt);
    out += ", \"reason\": \"" + r.reason + "\"";
    out += ", \"workerIndex\": " + std::to_string(r.workerIndex);
    out += ", \"generation\": " + std::to_string(r.generation);
    out += "}";
  }
  out += ledger.requeuedShards.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace xlv::campaign
