#include "campaign/campaign.h"

#include <algorithm>
#include <exception>

#include "util/log.h"
#include "util/timer.h"

namespace xlv::campaign {

bool CampaignResult::ok() const noexcept {
  for (const auto& it : items) {
    if (!it.error.empty()) return false;
  }
  return true;
}

const CampaignItemResult* CampaignResult::find(const std::string& label) const noexcept {
  for (const auto& it : items) {
    if (it.label == label) return &it;
  }
  return nullptr;
}

namespace {

std::string defaultLabel(const CampaignItem& item) {
  const char* kind =
      item.options.sensorKind == insertion::SensorKind::Razor ? "razor" : "counter";
  return item.caseStudy.name + "/" + kind;
}

}  // namespace

CampaignResult runCampaign(const CampaignSpec& spec) {
  util::Timer wall;
  CampaignResult result;
  result.name = spec.name;
  result.items.resize(spec.items.size());

  Executor executor(spec.executor);
  result.threadsUsed = executor.effectiveThreads(spec.items.size());
  XLV_INFO("campaign") << "'" << spec.name << "': " << spec.items.size() << " items on "
                       << result.threadsUsed << " threads";

  executor.run(spec.items.size(), [&](std::size_t i) {
    const CampaignItem& item = spec.items[i];
    CampaignItemResult& out = result.items[i];
    out.taskId = i;
    out.label = item.label.empty() ? defaultLabel(item) : item.label;
    util::Timer t;
    try {
      out.report = core::runFlow(item.caseStudy, item.options);
    } catch (const std::exception& e) {
      out.error = e.what();
    } catch (...) {
      out.error = "unknown error";
    }
    out.taskSeconds = t.seconds();
  });

  for (const auto& it : result.items) result.simSeconds += it.taskSeconds;
  result.wallSeconds = wall.seconds();
  return result;
}

CampaignSpec fullMatrixCampaign(const std::vector<ips::CaseStudy>& cases,
                                const core::FlowOptions& base, ExecutorConfig exec) {
  CampaignSpec spec;
  spec.name = "full-matrix";
  spec.executor = exec;
  const bool outerParallel = resolveThreadCount(exec.threads) > 1;
  for (const auto& cs : cases) {
    for (auto kind : {insertion::SensorKind::Razor, insertion::SensorKind::Counter}) {
      CampaignItem item;
      item.caseStudy = cs;
      item.options = base;
      item.options.sensorKind = kind;
      if (outerParallel) item.options.analysisThreads = 1;
      spec.items.push_back(std::move(item));
    }
  }
  return spec;
}

}  // namespace xlv::campaign
