#include "campaign/campaign.h"

#include <algorithm>
#include <exception>

#include "campaign/serialize.h"
#include "util/artifact_store.h"
#include "util/log.h"
#include "util/timer.h"

namespace xlv::campaign {

bool CampaignResult::ok() const noexcept {
  for (const auto& it : items) {
    if (!it.error.empty()) return false;
  }
  return true;
}

int campaignExitCode(const CampaignResult& result) noexcept { return result.ok() ? 0 : 3; }

const CampaignItemResult* CampaignResult::firstError() const noexcept {
  const CampaignItemResult* first = nullptr;
  for (const auto& it : items) {
    if (it.error.empty()) continue;
    if (first == nullptr || it.taskId < first->taskId) first = &it;
  }
  return first;
}

const CampaignItemResult* CampaignResult::find(const std::string& label) const noexcept {
  for (const auto& it : items) {
    if (it.label == label) return &it;
  }
  return nullptr;
}

bool CampaignResult::sameResults(const CampaignResult& other) const noexcept {
  if (items.size() != other.items.size()) return false;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& x = items[i];
    const auto& y = other.items[i];
    const auto& rx = x.report;
    const auto& ry = y.report;
    if (x.label != y.label || x.error != y.error) return false;
    if (rx.ipName != ry.ipName || rx.sensorKind != ry.sensorKind ||
        rx.hfRatio != ry.hfRatio || rx.sensors.size() != ry.sensors.size() ||
        rx.skippedEndpoints != ry.skippedEndpoints ||
        rx.sensorAreaGates != ry.sensorAreaGates ||
        rx.sta.criticalCount != ry.sta.criticalCount ||
        rx.sta.thresholdPs != ry.sta.thresholdPs ||
        rx.loc.rtlClean != ry.loc.rtlClean || rx.loc.rtlAugmented != ry.loc.rtlAugmented ||
        rx.loc.tlm != ry.loc.tlm || rx.loc.tlmInjected != ry.loc.tlmInjected ||
        rx.mutantSpecs != ry.mutantSpecs) {
      return false;
    }
    if (!rx.analysis.sameResults(ry.analysis)) return false;
  }
  return true;
}

namespace {

std::string defaultLabel(const CampaignItem& item) {
  return item.caseStudy.name + "/" + insertion::sensorKindName(item.options.sensorKind);
}

}  // namespace

CampaignResult runCampaign(const CampaignSpec& spec) {
  util::Timer wall;
  CampaignResult result;
  result.name = spec.name;
  result.items.resize(spec.items.size());

  // Artifact-store traffic is attributed by stats delta around this run
  // (one campaign per process in the sharded flow; concurrent campaigns in
  // one process would share the attribution, which only skews the ledger,
  // never the results).
  util::ArtifactStore* store = util::processArtifactStore();
  const util::ArtifactStoreStats storeBefore =
      store != nullptr ? store->stats() : util::ArtifactStoreStats{};

  Executor executor(spec.executor);
  result.threadsUsed = executor.effectiveThreads(spec.items.size());
  XLV_INFO("campaign") << "'" << spec.name << "': " << spec.items.size() << " items on "
                       << result.threadsUsed << " threads";

  executor.run(spec.items.size(), [&](std::size_t i) {
    const CampaignItem& item = spec.items[i];
    CampaignItemResult& out = result.items[i];
    out.taskId = i;
    out.label = item.label.empty() ? defaultLabel(item) : item.label;
    util::Timer t;
    try {
      if (!item.prefixKey.empty()) {
        // Memory first, then the artifact store (the elaborate+insertion
        // spill: a warm process reloads the STA report and re-derives the
        // designs deterministically), then a full build written through.
        // Both layers count as "shared": the STA work was not repeated.
        bool memHit = false, diskHit = false;
        const core::FlowPrefixPtr prefix = util::getOrBuildWithStore<core::FlowPrefix>(
            core::flowPrefixCache(), util::processArtifactStore(), "prefix",
            item.prefixKey,
            [&] { return core::buildFlowPrefix(item.caseStudy, item.options); },
            encodeFlowPrefix,
            [&](std::string_view data) {
              return decodeFlowPrefix(data, item.caseStudy, item.options);
            },
            &memHit, &diskHit);
        out.prefixShared = memHit || diskHit;
        out.report = core::runFlowWithPrefix(*prefix, item.caseStudy, item.options);
      } else {
        out.report = core::runFlow(item.caseStudy, item.options);
      }
      out.goldenSeconds = out.report.analysis.goldenSeconds;
      out.goldenFromCache = out.report.analysis.goldenFromCache;
    } catch (const std::exception& e) {
      out.error = e.what();
    } catch (...) {
      out.error = "unknown error";
    }
    out.taskSeconds = t.seconds();
  });

  for (const auto& it : result.items) {
    // Task time already contains the item's analysis wall time; add the
    // work a parallel inner analysis did beyond its elapsed time so
    // simSeconds stays "total simulation work" (golden recording included
    // exactly once per actual recording).
    result.simSeconds += it.taskSeconds;
    const auto& a = it.report.analysis;
    if (a.simSeconds > a.wallSeconds) result.simSeconds += a.simSeconds - a.wallSeconds;
    result.goldenSeconds += it.goldenSeconds;
    result.goldenCacheHits += it.goldenFromCache ? 1 : 0;
    result.prefixCacheHits += it.prefixShared ? 1 : 0;
    result.mutantCacheHits += a.mutantCacheHits;
    result.cyclesSimulated += a.cyclesSimulated;
    result.cyclesSkipped += a.cyclesSkipped;
    result.nativeCompiles += a.nativeCompiles;
    result.nativeCacheHits += a.nativeCacheHits;
    result.batchedMutants += a.batchedMutants;
  }
  if (store != nullptr) {
    const util::ArtifactStoreStats after = store->stats();
    result.diskHits = static_cast<int>(after.hits - storeBefore.hits);
    result.diskStores = static_cast<int>(after.stores - storeBefore.stores);
    result.diskEvictions = static_cast<int>(after.evictions - storeBefore.evictions);
  }
  result.wallSeconds = wall.seconds();
  return result;
}

CampaignSpec fullMatrixCampaign(const std::vector<ips::CaseStudy>& cases,
                                const core::FlowOptions& base, ExecutorConfig exec) {
  CampaignSpec spec;
  spec.name = "full-matrix";
  spec.executor = exec;
  const bool outerParallel = resolveThreadCount(exec.threads) > 1;
  for (const auto& cs : cases) {
    for (auto kind : {insertion::SensorKind::Razor, insertion::SensorKind::Counter}) {
      CampaignItem item;
      item.caseStudy = cs;
      item.options = base;
      item.options.sensorKind = kind;
      if (outerParallel) item.options.analysisThreads = 1;
      spec.items.push_back(std::move(item));
    }
  }
  return spec;
}

}  // namespace xlv::campaign
