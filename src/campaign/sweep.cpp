#include "campaign/sweep.h"

#include <cstdio>
#include <optional>
#include <type_traits>

namespace xlv::campaign {

namespace {

/// Shortest round-trippable rendering ("%g"): deterministic for a given
/// value, human-readable in labels.
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::size_t sweepCardinality(const SweepSpec& sweep) {
  auto dim = [](std::size_t n) { return n == 0 ? std::size_t{1} : n; };
  const std::size_t perKind = dim(sweep.axes.corners.size()) *
                              dim(sweep.axes.thresholdFractions.size()) *
                              dim(sweep.axes.spreadFractions.size()) *
                              dim(sweep.axes.mutantSets.size()) *
                              dim(sweep.axes.backends.size());
  // The hf axis only applies to Counter items: Razor ignores hfRatio
  // (core::flowHfRatio), so sweeping it there would emit duplicate points.
  auto kindCount = [&](insertion::SensorKind k) {
    return perKind * (k == insertion::SensorKind::Razor
                          ? std::size_t{1}
                          : dim(sweep.axes.hfRatios.size()));
  };
  std::size_t total = 0;
  if (sweep.axes.sensorKinds.empty()) {
    total = kindCount(sweep.base.sensorKind);
  } else {
    for (auto k : sweep.axes.sensorKinds) total += kindCount(k);
  }
  return sweep.cases.size() * total;
}

std::string sweepPointLabel(const ips::CaseStudy& cs, const core::FlowOptions& opts,
                            const SweepAxes& axes) {
  std::string label = cs.name + "/" + insertion::sensorKindName(opts.sensorKind);
  if (!axes.corners.empty() && opts.staCorner) label += "/" + opts.staCorner->name;
  if (!axes.thresholdFractions.empty() && opts.staThresholdFraction) {
    label += "/thr=" + fmt(*opts.staThresholdFraction);
  }
  if (!axes.spreadFractions.empty() && opts.staSpreadFraction) {
    label += "/spread=" + fmt(*opts.staSpreadFraction);
  }
  if (!axes.hfRatios.empty() && opts.hfRatio) {
    label += "/hf=" + std::to_string(*opts.hfRatio);
  }
  if (!axes.mutantSets.empty()) {
    label += std::string("/mutants=") + core::mutantSetVariantName(opts.mutantSet);
  }
  if (!axes.backends.empty()) {
    label += std::string("/backend=") + analysis::simBackendName(opts.backend);
  }
  return label;
}

CampaignSpec expandSweep(const SweepSpec& sweep) {
  CampaignSpec spec;
  spec.name = sweep.name;
  spec.executor = sweep.executor;
  const bool outerParallel = resolveThreadCount(sweep.executor.threads) > 1;

  // Each axis iterates its value list, or a single "unset" slot when the
  // axis is not swept (std::nullopt keeps the base/case-study value).
  auto forEach = [](auto&& values, auto&& fn) {
    using V = std::decay_t<decltype(values[0])>;
    if (values.empty()) {
      fn(std::optional<V>{});
    } else {
      for (const auto& v : values) fn(std::optional<V>{v});
    }
  };

  const std::vector<int> kNoHfAxis;
  for (const auto& cs : sweep.cases) {
    forEach(sweep.axes.sensorKinds, [&](std::optional<insertion::SensorKind> kind) {
      // Razor ignores hfRatio, so the hf axis collapses to one (unlabelled)
      // slot there — otherwise every hf value would duplicate the point.
      const insertion::SensorKind effKind = kind.value_or(sweep.base.sensorKind);
      const auto& hfAxis = effKind == insertion::SensorKind::Razor ? kNoHfAxis
                                                                   : sweep.axes.hfRatios;
      forEach(sweep.axes.corners, [&](std::optional<sta::Corner> corner) {
        forEach(sweep.axes.thresholdFractions, [&](std::optional<double> thr) {
          forEach(sweep.axes.spreadFractions, [&](std::optional<double> spread) {
            forEach(hfAxis, [&](std::optional<int> hf) {
              forEach(sweep.axes.mutantSets, [&](std::optional<core::MutantSetVariant> ms) {
                forEach(sweep.axes.backends, [&](std::optional<analysis::SimBackend> be) {
                  CampaignItem item;
                  item.caseStudy = cs;
                  item.options = sweep.base;
                  if (kind) item.options.sensorKind = *kind;
                  if (corner) item.options.staCorner = *corner;
                  if (thr) item.options.staThresholdFraction = *thr;
                  if (spread) item.options.staSpreadFraction = *spread;
                  if (hf) item.options.hfRatio = *hf;
                  if (ms) item.options.mutantSet = *ms;
                  if (be) item.options.backend = *be;
                  if (sweep.shareGoldenTraces) item.options.useGoldenCache = true;
                  if (sweep.shareMutantResults) item.options.useMutantCache = true;
                  if (outerParallel) item.options.analysisThreads = 1;
                  item.label = sweepPointLabel(cs, item.options, sweep.axes);
                  if (sweep.sharePrefixes) {
                    item.prefixKey = core::flowPrefixKey(cs, item.options);
                  }
                  spec.items.push_back(std::move(item));
                });
              });
            });
          });
        });
      });
    });
  }
  return spec;
}

CampaignResult runSweep(const SweepSpec& sweep) { return runCampaign(expandSweep(sweep)); }

}  // namespace xlv::campaign
