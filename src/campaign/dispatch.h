// Campaign dispatcher daemon: work-stealing worker pool with crash recovery.
//
// PR 3's static sharding (campaign/shard.h) splits a campaign into N
// weight-balanced slices up front — good enough when every fragment costs
// what the planner guessed, and useless when a worker dies. This layer is
// the dynamic counterpart (ROADMAP "campaign service", local step): a
// dispatcher process
//
//   * splits the spec into STEALABLE UNITS (planDispatchUnits — the flat
//     unit/weight list underneath planShards, mutant-range fragments and
//     all) and queues them heaviest-first,
//   * spawns a pool of worker subprocesses (util/subprocess.h) that each
//     loop { recv unit, run it via runShardUnits, stream the ShardOutput
//     back },
//   * schedules by WORK-STEALING: a worker that finishes early just claims
//     the next queued unit, so one mispredicted 100x fragment delays one
//     worker, not the whole static plan,
//   * merges results incrementally via mergeShards as they arrive, and
//   * RE-QUEUES the in-flight unit of any worker that dies (exit, signal)
//     or goes silent past the heartbeat timeout (SIGKILLed first). Retries
//     are safe because unit results are bit-identical by construction —
//     mergeShards deduplicates a retry that raced its dead predecessor's
//     delivered result.
//
// Wire protocol: length-framed util/codec documents over the workers'
// stdin/stdout pipes (frameWire / FrameReader below; frame schemas in
// campaign/serialize.h, codec v5). Everything is versioned, so a
// mixed-version dispatcher/worker pair refuses to talk instead of skewing
// results.
//
// The dispatcher is deliberately SINGLE-THREADED (one poll(2) loop): every
// scheduling decision is a deterministic function of the event order, which
// is what the scheduler unit tests pin down.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/shard.h"
#include "util/codec.h"

namespace xlv::campaign {

/// A frame header declared a length above the reader's configured cap.
/// Distinct from a generic framing DecodeError so the campaign service can
/// answer an untrusted client's oversized frame with a structured reject
/// instead of silently dropping the connection.
class FrameCapExceeded : public util::DecodeError {
 public:
  FrameCapExceeded(std::size_t declared, std::size_t cap)
      : util::DecodeError("frame: length " + std::to_string(declared) +
                          " exceeds connection cap " + std::to_string(cap)),
        declaredBytes(declared),
        capBytes(cap) {}
  std::size_t declaredBytes;
  std::size_t capBytes;
};

// --- frame transport ---------------------------------------------------------

/// Wrap one codec document for the pipe: "xlvf <len>\n" + document. The
/// prefix is the only framing layer; the document's own header/version
/// checks still apply after deframing.
std::string frameWire(std::string_view doc);

/// Incremental deframer for a pipe byte stream: feed() arbitrary chunks,
/// next() yields complete documents in order. Malformed framing (bad magic,
/// non-numeric or absurd length) throws util::DecodeError — a corrupted
/// stream must kill the connection, never resync silently.
class FrameReader {
 public:
  /// Append raw bytes from the pipe.
  void feed(std::string_view data);
  /// Extract the next complete document into `doc`; false when the buffer
  /// holds only a partial frame.
  bool next(std::string& doc);
  /// Bytes buffered but not yet returned (0 on a clean EOF boundary).
  std::size_t pendingBytes() const noexcept { return buffer_.size() - pos_; }
  /// Lower the acceptable frame size for this connection (an untrusted
  /// client socket, vs. the default 1 GiB trusted worker-pipe cap). A
  /// header declaring more throws FrameCapExceeded from next().
  void setMaxFrameBytes(std::size_t cap) noexcept { maxFrameBytes_ = cap; }
  std::size_t maxFrameBytes() const noexcept { return maxFrameBytes_; }

 private:
  std::string buffer_;
  std::size_t pos_ = 0;
  std::size_t maxFrameBytes_ = std::size_t{1} << 30;
};

/// Outcome of readFrameBlocking. Eof (peer closed the stream cleanly) and
/// Error (read(2) failed; see the errnoOut parameter) are DISTINCT: treating
/// an I/O failure as "peer finished" silently drops in-flight work.
enum class FrameRead { Frame, Eof, Error };

/// Blocking read of the next complete frame from `fd` into `doc`. Retries
/// EINTR; any other read error yields FrameRead::Error with the errno in
/// *errnoOut (when non-null). Propagates FrameReader's util::DecodeError on
/// a corrupt stream.
FrameRead readFrameBlocking(int fd, FrameReader& reader, std::string& doc,
                            int* errnoOut = nullptr);

/// Per-connection outbound byte queue for a non-blocking fd. The
/// single-threaded dispatcher/server loops never issue a blocking write:
/// frames are enqueue()d here and flushTo() drains as much as the fd
/// accepts, with POLLOUT re-arming the rest. This is the fix for the
/// submit-path deadlock (a worker with a full stdin pipe while itself
/// blocked writing a large result would wedge a blocking dispatcher
/// forever).
class OutboundBuffer {
 public:
  /// Append bytes to the queue (no I/O).
  void enqueue(std::string_view data);
  /// Write as much as `fd` currently accepts. True on progress or EAGAIN
  /// (remaining bytes stay queued for the next POLLOUT); false on a fatal
  /// write error (EPIPE — dead peer), after which the connection is gone.
  bool flushTo(int fd) noexcept;
  bool empty() const noexcept { return buffer_.size() == pos_; }
  /// Bytes enqueued but not yet written.
  std::size_t pendingBytes() const noexcept { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  std::size_t pos_ = 0;
};

// --- work-stealing task queue ------------------------------------------------

/// One stealable unit with its scheduling state.
struct DispatchTask {
  std::size_t index = 0;  ///< position in the dispatch unit list (== merge shardIndex)
  ShardUnit unit;
  std::uint64_t weight = 1;    ///< planner weight (mutant count)
  std::uint64_t attempts = 0;  ///< submissions so far (1 = first run underway/done)
};

/// Deterministic central queue the workers steal from. Pending tasks are
/// ordered heaviest-first (weight desc, index asc — LPT scheduling), so the
/// expensive fragments start first and the small ones backfill idle
/// workers; a re-queued task goes to the FRONT (it already waited once).
/// Single-threaded by design: only the dispatcher loop touches it.
class TaskQueue {
 public:
  TaskQueue() = default;
  explicit TaskQueue(const DispatchUnitPlan& plan);

  std::size_t taskCount() const noexcept { return tasks_.size(); }
  std::size_t pendingCount() const noexcept { return pending_.size(); }
  bool hasPending() const noexcept { return !pending_.empty(); }
  /// True once every task completed or retired.
  bool done() const noexcept { return completed_ + retired_ == tasks_.size(); }
  std::size_t completedCount() const noexcept { return completed_; }
  std::size_t retiredCount() const noexcept { return retired_; }

  /// Pop the heaviest pending task, marking it in flight and counting the
  /// submission attempt. Throws std::logic_error when nothing is pending.
  const DispatchTask& claim();
  /// Return an in-flight task to the front of the queue (lost worker).
  /// Throws std::logic_error unless the task is currently in flight.
  void requeue(std::size_t taskIndex);
  /// Mark a task finished (accepted while in flight OR pending — a killed
  /// worker's already-piped result can land after its task was re-queued).
  /// False (and no state change) when the task already completed — a
  /// duplicate result from a raced retry.
  bool complete(std::size_t taskIndex);
  bool isCompleted(std::size_t taskIndex) const;

  /// Append a NEW pending task (poison-unit bisection: the halves of a
  /// retired fragment). The task gets the next free index — indices are
  /// stable, never reused — a fresh attempt budget, and the front of the
  /// pending order (its parent already waited its turns). Returns the new
  /// task's index.
  std::size_t addTask(const ShardUnit& unit, std::uint64_t weight);

  /// Take an in-flight or pending task out of scheduling WITHOUT counting
  /// it completed: the bisected parent (replaced by its halves) and the
  /// quarantined unit (replaced by a synthesized errored result) both end
  /// here. A retired task counts toward done() but not completedCount(),
  /// and a late genuine result for it reads as a duplicate. Throws
  /// std::logic_error when the task is already completed or retired.
  void retire(std::size_t taskIndex);
  bool isRetired(std::size_t taskIndex) const;

  const DispatchTask& task(std::size_t taskIndex) const { return tasks_.at(taskIndex); }

 private:
  enum class State : unsigned char { Pending, InFlight, Completed, Retired };
  std::vector<DispatchTask> tasks_;
  std::vector<State> states_;
  std::vector<std::size_t> pending_;  ///< task indices, front = next claim
  std::size_t completed_ = 0;
  std::size_t retired_ = 0;
};

// --- dispatcher --------------------------------------------------------------

/// Scheduling failed in a way retries cannot fix: a task exhausted its
/// attempt budget, every worker slot died with work pending, or the worker
/// pool could not be spawned at all. (Campaign ITEM errors are not dispatch
/// errors — they travel inside the merged result like everywhere else.)
class DispatchError : public std::runtime_error {
 public:
  explicit DispatchError(const std::string& what)
      : std::runtime_error("dispatch: " + what) {}
};

struct DispatchOptions {
  /// Worker pool size; 0 = resolveWorkerCount(0) (XLV_WORKERS or hardware).
  int workers = 0;
  /// Stealable-unit granularity, as ShardPlanOptions::maxFragmentMutants.
  std::size_t maxFragmentMutants = 0;
  /// Optional per-item mutant counts (planDispatchUnits semantics).
  std::vector<std::size_t> mutantCounts;
  /// Command prefix that execs ONE WORKER speaking the frame protocol on
  /// stdin/stdout; the dispatcher appends "--spec <path> --index <i>
  /// --generation <g> --heartbeat-ms <n>". Required.
  std::vector<std::string> workerCommand;
  /// Milliseconds between worker heartbeats while a unit runs.
  int heartbeatIntervalMs = 200;
  /// A busy worker silent this long is presumed hung: SIGKILL + re-queue.
  int heartbeatTimeoutMs = 10000;
  /// Submission budget per task (first run + retries); exhausting it is a
  /// DispatchError.
  int maxTaskAttempts = 3;
  /// Respawn budget per worker slot after a crash/kill.
  int maxWorkerRespawns = 2;
  /// Directory for the spec handoff file ("" = std::filesystem temp dir).
  std::string specDir;
};

/// One crash-recovery re-queue, as surfaced in the ledger (the acceptance
/// criterion: a killed worker's unit must show up here AND in the merged
/// result).
struct RequeueRecord {
  std::uint64_t taskIndex = 0;
  ShardUnit unit;
  std::uint64_t attempt = 0;  ///< 1-based submission attempt that was lost
  std::string reason;  ///< "worker-exit" | "worker-signal" | "heartbeat-timeout" | "submit-write-failed"
  std::uint64_t workerIndex = 0;
  std::uint64_t generation = 0;
};

struct DispatchLedger {
  std::uint64_t tasksTotal = 0;
  std::uint64_t tasksCompleted = 0;
  std::uint64_t submissions = 0;       ///< submit frames accepted by workers
  std::uint64_t duplicateResults = 0;  ///< results discarded (task already done)
  std::uint64_t workersRequested = 0;
  std::uint64_t workersSpawned = 0;  ///< processes ever spawned (incl. respawns)
  std::uint64_t workerRespawns = 0;
  std::uint64_t workersKilled = 0;  ///< heartbeat-timeout SIGKILLs
  std::uint64_t heartbeats = 0;
  std::vector<RequeueRecord> requeuedShards;
};

struct DispatchResult {
  CampaignResult result;  ///< mergeShards output, bit-identical to runCampaign
  DispatchLedger ledger;
};

/// Run the campaign through a dispatcher-owned worker pool. Blocks until
/// every unit completed (merging incrementally as results stream back) and
/// returns the merged result plus the scheduling ledger. Throws
/// DispatchError when recovery is impossible (see class doc);
/// std::invalid_argument on a malformed request (empty workerCommand,
/// non-positive timeouts).
DispatchResult runDispatcher(const CampaignSpec& spec, const DispatchOptions& opt);

struct DispatchWorkerOptions {
  int workerIndex = 0;
  int generation = 0;
  int heartbeatIntervalMs = 200;
  int inFd = 0;    ///< frames from the dispatcher (stdin)
  int outFd = 1;   ///< frames to the dispatcher (stdout)
};

/// Worker main loop (the "worker" subcommand of tools/xlv_campaignd): recv
/// SubmitFrames, run each unit via runShardUnits, stream StatusFrame /
/// HeartbeatFrame / ResultFrame back. Returns the process exit code: 0
/// after a clean shutdown frame or dispatcher EOF, nonzero on protocol
/// errors (codec version skew, spec fingerprint mismatch, stdin I/O
/// failure).
///
/// `defaultSpec` (may be null) serves submits whose specPath is empty — the
/// single-campaign `run` mode ships the spec once at worker startup. A
/// submit with a non-empty specPath loads (and caches, keyed by path +
/// fingerprint) that spec instead, which is how one worker pool serves many
/// campaigns at once under campaign/server.h. Either way the SubmitFrame's
/// specFnv must match the spec actually loaded, or the worker refuses with
/// exit 8.
///
/// Fault-injection hooks (tests/campaign/dispatch_fault_test.cpp), honored
/// only when XLV_TEST_FAULT_WORKER (default 0) names this workerIndex AND
/// generation == 0, so the respawned worker recovers:
///   XLV_TEST_DIE_AFTER_ITEMS=N   raise(SIGKILL) on accepting a unit once
///                                itemsDone >= N (crash mid-shard);
///   XLV_TEST_HANG_AFTER_ITEMS=N  stop heartbeating and sleep forever
///                                (exercises the heartbeat timeout);
///   XLV_TEST_EXIT_AFTER_ITEMS=N  _exit(9) (orderly-looking failure).
int runDispatchWorker(const CampaignSpec* defaultSpec, const DispatchWorkerOptions& opt);

/// Worker pool size: `requested` when > 0, else strict-parsed XLV_WORKERS
/// (positive integer, else std::invalid_argument), else
/// hardware_concurrency (>= 1).
int resolveWorkerCount(int requested);

/// Strict env-knob parse shared by every daemon tunable (XLV_HEARTBEAT_MS,
/// XLV_HEARTBEAT_TIMEOUT_MS, the XLV_TEST_* fault hooks): `fallback` when
/// the variable is unset or empty, the parsed value when it is a whole
/// decimal integer, and std::invalid_argument — naming the variable and the
/// offending value — otherwise. Deliberately the same contract as
/// XLV_WORKERS in resolveWorkerCount: a typo stops the daemon, it never
/// silently runs with a default.
long envLongStrict(const char* name, long fallback);

/// The ledger as a JSON object (CI uploads it next to the BENCH_*.json
/// artifacts; keys are the DispatchLedger field names, requeuedShards as an
/// array of objects).
std::string encodeDispatchLedgerJson(const DispatchLedger& ledger);

}  // namespace xlv::campaign
