// Campaign service: socket front end over the dispatcher worker pool.
//
// PR 7's dispatcher (campaign/dispatch.h) runs ONE campaign through a
// work-stealing pool and exits. This layer is the ROADMAP campaign-service
// sub-step (2): a long-lived server that listens on a Unix-domain socket
// (optionally loopback TCP), accepts campaign submissions from many
// concurrent clients, and multiplexes them over a single worker pool and
// one shared artifact store. The wire protocol is the same length-framed
// codec-document stream the workers speak — FrameReader is transport-
// agnostic, so pointing it at a socket fd instead of a pipe is the whole
// transport change. Client-facing frame schemas live in campaign/serialize
// (codec v6): ClientSubmitFrame -> AcceptFrame | RejectFrame, then streamed
// ItemResultFrames and a final CampaignDoneFrame.
//
// Scheduling is ROUND-ROBIN FAIR ACROSS campaigns and HEAVIEST-FIRST WITHIN
// a campaign: each idle worker takes the heaviest pending unit of the next
// campaign in admission order, so a one-item smoke submission finishes long
// before a million-mutant campaign's tail, while each campaign individually
// keeps the LPT order that makes work-stealing efficient.
//
// Backpressure is a bounded admission queue, never an unbounded buffer: a
// submission that would push the pending-unit total past maxPendingUnits
// (or the campaign count past maxCampaigns) is answered with a structured
// RejectFrame carrying retryAfterMs. An EMPTY server always accepts, so a
// single campaign bigger than the whole budget is still servable.
//
// Crash semantics, both directions:
//   * worker death  — exactly the dispatcher's recovery: salvage drained
//     results, re-queue the lost unit (attributed to its owning campaign's
//     ledger entry), respawn the slot. A unit exhausting its attempt budget
//     fails ONLY its campaign (CampaignDoneFrame with error), never the
//     server.
//   * client death  — a dying client's campaign is cancelled: its pending
//     units leave the scheduler immediately, in-flight units run to
//     completion with their results discarded (counted, not merged), and
//     the cancellation lands in the per-campaign ledger.
//
// The server itself is single-threaded (one poll(2) loop, like the
// dispatcher) and every fd — listener, clients, worker pipes — is
// non-blocking with per-connection outbound buffers (OutboundBuffer), so no
// peer can wedge the loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/dispatch.h"
#include "campaign/shard.h"

namespace xlv::campaign {

struct ServeOptions {
  /// AF_UNIX listen path; takes precedence over tcpPort. The path is
  /// unlinked (if stale) before bind and removed on shutdown.
  std::string socketPath;
  /// Loopback (127.0.0.1) TCP listen port, used when socketPath is empty.
  int tcpPort = 0;
  /// Worker pool size; 0 = resolveWorkerCount(0) (XLV_WORKERS or hardware).
  int workers = 0;
  /// Default stealable-unit granularity for submissions that do not set
  /// their own (ClientSubmitFrame::maxFragmentMutants == 0).
  std::size_t maxFragmentMutants = 0;
  /// Command prefix that execs one worker (same contract as
  /// DispatchOptions::workerCommand, minus "--spec": served units carry
  /// their spec handoff path per-frame). Required.
  std::vector<std::string> workerCommand;
  int heartbeatIntervalMs = 200;
  int heartbeatTimeoutMs = 10000;
  int maxTaskAttempts = 3;
  int maxWorkerRespawns = 2;
  /// Directory for per-campaign spec handoff files ("" = std::filesystem
  /// temp dir).
  std::string specDir;
  /// Admission bound: a submission is rejected when the queued-unit total
  /// would exceed this — unless the server is idle (nothing pending), which
  /// always admits so an oversized single campaign still runs.
  std::size_t maxPendingUnits = 1024;
  /// Admission bound on concurrently live campaigns.
  std::size_t maxCampaigns = 64;
  /// retryAfterMs stamped into backpressure RejectFrames.
  std::uint64_t rejectRetryAfterMs = 1000;
  /// Stop once this many admitted campaigns have left the scheduler
  /// (completed, failed or cancelled) and none remain live; 0 = serve
  /// forever. Tests and the CI soak bound their runs with this.
  std::uint64_t maxCampaignsServed = 0;
  /// Per-CLIENT-connection frame-length cap. A submit frame declaring a
  /// bigger body is answered with a structured RejectFrame before any body
  /// byte is read. Worker pipes keep the trusted 1 GiB codec ceiling — this
  /// bound is about untrusted sockets, not the result stream.
  std::size_t maxClientFrameBytes = std::size_t{16} << 20;
  /// Close a client connection that has been admitted onto the poll set but
  /// has not delivered a complete submit frame within this budget (half-open
  /// or stalled clients). 0 disables the scan.
  int clientReadTimeoutMs = 30000;
  /// Install SIGTERM/SIGINT handlers (self-pipe) that drain the server:
  /// stop admitting, finish in-flight campaigns, flush ledgers, exit
  /// cleanly. A second signal stops immediately. Off by default because
  /// handlers are process-global — the `serve` tool turns it on; embedded
  /// test servers leave signal disposition alone.
  bool enableSignalDrain = false;
};

/// One admitted campaign's scheduling record.
struct CampaignLedgerEntry {
  std::uint64_t campaignId = 0;
  std::string name;  ///< ClientSubmitFrame::clientName
  std::uint64_t unitsTotal = 0;
  std::uint64_t unitsCompleted = 0;
  /// Crash-recovery re-queues attributed to this campaign (its units lost
  /// to dead/hung workers).
  std::uint64_t requeues = 0;
  /// Results that arrived after this campaign was cancelled and were
  /// dropped instead of forwarded.
  std::uint64_t discardedResults = 0;
  bool cancelled = false;
  std::string error;  ///< non-empty when dispatch gave up on the campaign
  /// Poison-unit splits: a multi-mutant fragment that exhausted its attempt
  /// budget is split in half and both halves re-queued, isolating the
  /// poison mutant instead of failing the campaign.
  std::uint64_t bisections = 0;
  /// Task indices of quarantined units — irreducible (whole-item or
  /// single-mutant) units that exhausted their attempts. Their items carry
  /// structured errors; the rest of the campaign completed normally.
  std::vector<std::uint64_t> quarantined;
  /// True when the campaign was still in flight as a drain began and the
  /// server finished it before exiting (informational).
  bool drained = false;
};

struct ServeLedger {
  std::uint64_t campaignsAccepted = 0;
  std::uint64_t campaignsRejected = 0;
  std::uint64_t campaignsCompleted = 0;
  std::uint64_t campaignsCancelled = 0;
  std::uint64_t submissions = 0;       ///< submit frames queued to workers
  std::uint64_t duplicateResults = 0;  ///< retry raced its predecessor's result
  std::uint64_t discardedResults = 0;  ///< results of cancelled campaigns
  std::uint64_t workersSpawned = 0;
  std::uint64_t workerRespawns = 0;
  std::uint64_t workersKilled = 0;  ///< heartbeat-timeout SIGKILLs
  std::uint64_t heartbeats = 0;
  std::uint64_t quarantinedUnits = 0;  ///< irreducible poison units isolated
  std::uint64_t bisections = 0;        ///< poison-fragment splits
  std::uint64_t deadlineFailures = 0;  ///< campaigns failed past their deadline
  std::uint64_t clientReadTimeouts = 0;  ///< half-open clients closed
  std::uint64_t frameCapRejects = 0;   ///< oversize client frames rejected
  std::uint64_t drainRequests = 0;     ///< drain signals received
  bool drained = false;  ///< the run ended via a drain signal, not quota
  /// Every admitted campaign, in admission order (live ones are finalized
  /// into here when the server stops).
  std::vector<CampaignLedgerEntry> campaigns;
};

struct ServeResult {
  ServeLedger ledger;
};

/// Run the campaign server until maxCampaignsServed campaigns finished
/// (blocks forever when that is 0). Throws DispatchError when recovery is
/// impossible (listen/bind failure, the whole worker pool lost with work
/// pending); std::invalid_argument on a malformed request (no listen
/// address, empty workerCommand, non-positive timeouts).
ServeResult runCampaignServer(const ServeOptions& opt);

/// The ledger as a JSON object (CI uploads it next to the dispatcher's
/// BENCH_campaignd_ledger.json; per-campaign entries under "campaigns").
std::string encodeServeLedgerJson(const ServeLedger& ledger);

// --- client ------------------------------------------------------------------

struct SubmitOptions {
  /// AF_UNIX path of the server; takes precedence over tcpPort.
  std::string socketPath;
  /// Loopback TCP port, used when socketPath is empty.
  int tcpPort = 0;
  /// Label stored in the server's per-campaign ledger entry.
  std::string clientName = "xlv_campaign";
  /// Requested unit granularity (0 = the server's default).
  std::size_t maxFragmentMutants = 0;
  /// Test hook: hard-close the socket after receiving this many
  /// ItemResultFrames (-1 = never) — simulates a client dying mid-campaign
  /// so tests and the CI soak can exercise server-side cancellation.
  long disconnectAfterItems = -1;
  /// Server-enforced wall-clock budget for the campaign, measured from
  /// admission (ClientSubmitFrame::deadlineMs). 0 = no deadline.
  std::uint64_t deadlineMs = 0;
  /// Retry budget for RETRYABLE failures only: a structured backpressure
  /// reject (retryAfterMs > 0) or a refused connection. A mid-stream
  /// disconnect is NOT retried — the campaign may still be running
  /// server-side and a blind resubmit would double-run it. 0 = single shot.
  int maxRetries = 0;
  /// First-retry backoff; doubles per retry, floored by the server's
  /// retryAfterMs hint and jittered ±50% so synchronized clients spread out.
  std::uint64_t retryBaseMs = 200;
  /// Seed for the backoff jitter (deterministic tests); 0 derives one from
  /// the pid.
  std::uint64_t retryJitterSeed = 0;
};

/// Everything one submission produced. Exactly one of rejected /
/// disconnected / done is set on a non-error outcome; `error` is non-empty
/// when the transport or protocol failed (or the server's CampaignDoneFrame
/// carried a dispatch error).
struct SubmitOutcome {
  bool accepted = false;      ///< AcceptFrame received
  bool rejected = false;      ///< RejectFrame received (see reason/retryAfterMs)
  bool done = false;          ///< CampaignDoneFrame received
  bool disconnected = false;  ///< the disconnectAfterItems hook fired
  std::string rejectReason;
  std::uint64_t retryAfterMs = 0;
  std::string error;
  std::uint64_t campaignId = 0;
  std::uint64_t unitCount = 0;
  /// Rejected/refused submissions retried before this outcome.
  std::uint64_t retries = 0;
  /// Task indices the server quarantined (CampaignDoneFrame::quarantined).
  /// Non-empty means `result` holds per-item errors for the poisoned items
  /// while every other item merged normally.
  std::vector<std::uint64_t> quarantined;
  /// Streamed per-unit outputs, in arrival order.
  std::vector<ShardOutput> outputs;
  /// mergeShards over `outputs` — bit-identical (sameResults) to a local
  /// runCampaign(spec). Valid when done && error.empty().
  CampaignResult result;
};

/// Submit `spec` to a running server and stream the results back (blocking;
/// returns when the campaign finished, was rejected, or the connection
/// failed — never throws, errors land in SubmitOutcome::error).
SubmitOutcome submitCampaign(const CampaignSpec& spec, const SubmitOptions& opt);

}  // namespace xlv::campaign
