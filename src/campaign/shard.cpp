#include "campaign/shard.h"

#include <algorithm>
#include <stdexcept>

#include "analysis/mutation_analysis.h"
#include "campaign/serialize.h"
#include "campaign/sweep.h"
#include "util/codec.h"
#include "util/fnv.h"
#include "util/log.h"

namespace xlv::campaign {

using util::Decoder;
using util::Encoder;

namespace {

constexpr const char* kPlanTag = "shard-plan";
constexpr const char* kOutputTag = "shard-output";

void putUnit(Encoder& e, const ShardUnit& u) {
  e.u64("unit.taskId", u.taskId);
  e.u64("unit.mutantBegin", u.mutantBegin);
  e.u64("unit.mutantEnd", u.mutantEnd);
}

ShardUnit getUnit(Decoder& d) {
  ShardUnit u;
  u.taskId = static_cast<std::size_t>(d.u64("unit.taskId"));
  u.mutantBegin = static_cast<std::size_t>(d.u64("unit.mutantBegin"));
  u.mutantEnd = static_cast<std::size_t>(d.u64("unit.mutantEnd"));
  return u;
}

}  // namespace

std::uint64_t campaignSpecFnv(const CampaignSpec& spec) {
  return util::fnv1a64(encodeCampaignSpec(spec));
}

std::size_t countFlowMutants(const ips::CaseStudy& cs, const core::FlowOptions& opts) {
  // The specs stageInjection would generate, without injecting or
  // simulating anything: elaborate + insertion + set generation + slice.
  core::FlowReport report;
  core::stageElaborate(cs, opts, report);
  core::stageInsertion(cs, opts, report);
  std::vector<mutation::MutantSpec> specs =
      opts.sensorKind == insertion::SensorKind::Razor
          ? analysis::razorMutantSet(report.sensors)
          : analysis::counterMutantSet(report.sensors,
                                       static_cast<double>(cs.periodPs), report.hfRatio);
  return core::sliceMutantSet(specs, opts.mutantSet).size();
}

DispatchUnitPlan planDispatchUnits(const CampaignSpec& spec, std::size_t maxFragmentMutants,
                                   const std::vector<std::size_t>& mutantCounts) {
  if (!mutantCounts.empty() && mutantCounts.size() != spec.items.size()) {
    throw std::invalid_argument(
        "planDispatchUnits: mutantCounts size " + std::to_string(mutantCounts.size()) +
        " does not match the spec's " + std::to_string(spec.items.size()) + " items");
  }

  std::vector<std::size_t> counts = mutantCounts;
  if (counts.empty() && maxFragmentMutants > 0) {
    counts.reserve(spec.items.size());
    for (const auto& item : spec.items) {
      counts.push_back(countFlowMutants(item.caseStudy, item.options));
    }
  }

  // Units in global task-id order (fragments of one item in range order),
  // each weighted by its mutant count so schedulers can balance simulation
  // work, not just item counts.
  DispatchUnitPlan plan;
  plan.specFnv = campaignSpecFnv(spec);
  for (std::size_t i = 0; i < spec.items.size(); ++i) {
    const std::size_t count = i < counts.size() ? counts[i] : 0;
    if (maxFragmentMutants > 0 && count > maxFragmentMutants) {
      for (std::size_t begin = 0; begin < count; begin += maxFragmentMutants) {
        const std::size_t end = std::min(count, begin + maxFragmentMutants);
        plan.units.push_back(ShardUnit{i, begin, end});
        plan.weights.push_back(static_cast<std::uint64_t>(end - begin));
      }
    } else {
      plan.units.push_back(ShardUnit{i, 0, 0});
      plan.weights.push_back(std::max<std::uint64_t>(count, 1));
    }
  }
  return plan;
}

ShardPlan planShards(const CampaignSpec& spec, const ShardPlanOptions& opt) {
  if (opt.shards < 1) {
    throw std::invalid_argument("planShards: shard count must be >= 1, got " +
                                std::to_string(opt.shards));
  }
  const DispatchUnitPlan flat =
      planDispatchUnits(spec, opt.maxFragmentMutants, opt.mutantCounts);
  const std::vector<ShardUnit>& units = flat.units;
  const std::vector<std::uint64_t>& weights = flat.weights;
  std::uint64_t totalWeight = 0;
  for (std::uint64_t w : weights) totalWeight += w;

  ShardPlan plan;
  plan.specFnv = flat.specFnv;
  plan.specItems = spec.items.size();
  plan.shards.assign(static_cast<std::size_t>(opt.shards), {});
  // Contiguous weighted partition: advance to the next shard once the
  // accumulated weight crosses its proportional boundary. Deterministic,
  // integer-only, and keeps each shard a contiguous task-id range so
  // prefix/golden-cache sharing within a shard mirrors the nested-loop
  // sweep order.
  const std::uint64_t n = static_cast<std::uint64_t>(opt.shards);
  std::uint64_t acc = 0;
  std::size_t shard = 0;
  for (std::size_t u = 0; u < units.size(); ++u) {
    plan.shards[shard].push_back(units[u]);
    acc += weights[u];
    while (shard + 1 < static_cast<std::size_t>(opt.shards) &&
           acc * n >= totalWeight * (static_cast<std::uint64_t>(shard) + 1)) {
      ++shard;
    }
  }
  return plan;
}

ShardOutput runShardUnits(const CampaignSpec& spec, const std::vector<ShardUnit>& units,
                          int shardIndex, int shardCount) {
  CampaignSpec sub;
  sub.name = spec.name + "/shard" + std::to_string(shardIndex);
  sub.executor = spec.executor;
  sub.items.reserve(units.size());
  for (const ShardUnit& unit : units) {
    CampaignItem item = spec.items.at(unit.taskId);
    if (!unit.wholeItem()) {
      item.options.mutantBegin = unit.mutantBegin;
      item.options.mutantEnd = unit.mutantEnd;
    }
    sub.items.push_back(std::move(item));
  }

  ShardOutput out;
  out.specFnv = campaignSpecFnv(spec);
  out.shardIndex = shardIndex;
  out.shardCount = shardCount;
  out.units = units;
  out.result = runCampaign(sub);
  // Task ids must be the GLOBAL ids the merge keys on, not shard-local ones.
  for (std::size_t i = 0; i < out.result.items.size(); ++i) {
    out.result.items[i].taskId = units[i].taskId;
  }
  return out;
}

ShardOutput runShard(const CampaignSpec& spec, const ShardPlan& plan, int shardIndex) {
  const std::uint64_t fnv = campaignSpecFnv(spec);
  if (plan.specFnv != fnv || plan.specItems != spec.items.size()) {
    throw std::invalid_argument("runShard: plan was built for a different spec");
  }
  if (shardIndex < 0 || shardIndex >= plan.shardCount()) {
    throw std::invalid_argument("runShard: shard index " + std::to_string(shardIndex) +
                                " outside [0, " + std::to_string(plan.shardCount()) + ")");
  }
  return runShardUnits(spec, plan.shards[static_cast<std::size_t>(shardIndex)], shardIndex,
                       plan.shardCount());
}

namespace {

/// Stitch one item's fragments (sorted by range) back into a single item
/// result, validating the ranges tile the mutant set from 0 and — when the
/// item's analysis ran cleanly — that the stitched results cover the full
/// injected set (fragments always inject every mutant, so the report's
/// mutantSpecs are the ground-truth count; a stale planner count that
/// undershoots must fail the merge, not silently drop mutants).
CampaignItemResult stitchFragments(std::size_t taskId, bool analysisRan,
                                   std::vector<const ShardOutput*> owners,
                                   std::vector<const CampaignItemResult*> parts,
                                   std::vector<const ShardUnit*> units) {
  std::vector<std::size_t> order(units.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return units[a]->mutantBegin < units[b]->mutantBegin;
  });

  CampaignItemResult merged = *parts[order[0]];
  merged.taskId = taskId;
  merged.error.clear();
  merged.report.analysis.results.clear();
  merged.report.analysis.simSeconds = 0.0;
  merged.report.analysis.wallSeconds = 0.0;
  merged.report.analysis.goldenSeconds = 0.0;
  merged.report.analysis.goldenFromCache = true;
  merged.report.analysis.goldenFromDisk = true;
  merged.report.analysis.mutantCacheHits = 0;
  merged.report.analysis.cyclesSimulated = 0;
  merged.report.analysis.cyclesSkipped = 0;
  merged.report.analysis.nativeCompiles = 0;
  merged.report.analysis.nativeCacheHits = 0;
  merged.report.analysis.batchedMutants = 0;
  merged.report.analysis.threadsUsed = 1;
  merged.taskSeconds = 0.0;
  merged.goldenSeconds = 0.0;
  merged.goldenFromCache = true;
  merged.prefixShared = false;

  std::size_t expectBegin = 0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const ShardUnit& unit = *units[order[k]];
    const CampaignItemResult& part = *parts[order[k]];
    if (unit.wholeItem()) {
      throw std::invalid_argument("merge: item " + std::to_string(taskId) +
                                  " is covered both whole and as fragments");
    }
    if (unit.mutantBegin != expectBegin) {
      throw std::invalid_argument(
          "merge: item " + std::to_string(taskId) + " fragment gap/overlap at mutant " +
          std::to_string(expectBegin) + " (next fragment starts at " +
          std::to_string(unit.mutantBegin) + ", shard " +
          std::to_string(owners[order[k]]->shardIndex) + ")");
    }
    const std::size_t want = unit.mutantEnd - unit.mutantBegin;
    const std::size_t got = part.report.analysis.results.size();
    // A clean non-final fragment must be full; the final one may be shorter
    // when the planner's count overshot the actual mutant set. Errored
    // fragments legitimately carry fewer (usually zero) results.
    if (part.error.empty() && k + 1 < order.size() && got != want) {
      throw std::invalid_argument("merge: item " + std::to_string(taskId) + " fragment [" +
                                  std::to_string(unit.mutantBegin) + ", " +
                                  std::to_string(unit.mutantEnd) + ") carries " +
                                  std::to_string(got) + " results, expected " +
                                  std::to_string(want));
    }
    if (merged.error.empty() && !part.error.empty()) merged.error = part.error;

    // Work (simSeconds, goldenSeconds) sums across fragments; elapsed time
    // (wallSeconds, taskSeconds) takes the max — fragments of one item run
    // concurrently on separate processes, mirroring the campaign-level
    // ledger rule in mergeShards.
    const auto& a = part.report.analysis;
    auto& out = merged.report.analysis;
    out.results.insert(out.results.end(), a.results.begin(), a.results.end());
    out.simSeconds += a.simSeconds;
    out.wallSeconds = std::max(out.wallSeconds, a.wallSeconds);
    out.goldenSeconds += a.goldenSeconds;
    out.goldenFromCache = out.goldenFromCache && a.goldenFromCache;
    out.goldenFromDisk = out.goldenFromDisk && a.goldenFromDisk;
    out.mutantCacheHits += a.mutantCacheHits;
    out.cyclesSimulated += a.cyclesSimulated;
    out.cyclesSkipped += a.cyclesSkipped;
    out.nativeCompiles += a.nativeCompiles;
    out.nativeCacheHits += a.nativeCacheHits;
    out.batchedMutants += a.batchedMutants;
    out.threadsUsed = std::max(out.threadsUsed, a.threadsUsed);

    merged.taskSeconds = std::max(merged.taskSeconds, part.taskSeconds);
    merged.goldenSeconds += part.goldenSeconds;
    merged.goldenFromCache = merged.goldenFromCache && part.goldenFromCache;
    merged.prefixShared = merged.prefixShared || part.prefixShared;
    expectBegin = unit.mutantEnd;
  }
  const std::size_t stitched = merged.report.analysis.results.size();
  const std::size_t expected = merged.report.mutantSpecs.size();
  if (analysisRan && merged.error.empty() && stitched != expected) {
    throw std::invalid_argument(
        "merge: item " + std::to_string(taskId) + " stitched " + std::to_string(stitched) +
        " mutant results but the injected set has " + std::to_string(expected) +
        " mutants (stale fragment plan?)");
  }
  return merged;
}

/// Agreement check for a double-submitted fragment: everything
/// CampaignResult::sameResults compares, at single-item granularity.
/// Retried fragments are bit-identical by construction, so two copies of one
/// fragment id that disagree mean spec/schema skew — a merge error, never a
/// silent pick.
bool samePartResults(const CampaignItemResult& x, const CampaignItemResult& y) {
  const auto& rx = x.report;
  const auto& ry = y.report;
  if (x.label != y.label || x.error != y.error) return false;
  if (rx.ipName != ry.ipName || rx.sensorKind != ry.sensorKind || rx.hfRatio != ry.hfRatio ||
      rx.sensors.size() != ry.sensors.size() ||
      rx.skippedEndpoints != ry.skippedEndpoints ||
      rx.sensorAreaGates != ry.sensorAreaGates ||
      rx.sta.criticalCount != ry.sta.criticalCount ||
      rx.sta.thresholdPs != ry.sta.thresholdPs || rx.loc.rtlClean != ry.loc.rtlClean ||
      rx.loc.rtlAugmented != ry.loc.rtlAugmented || rx.loc.tlm != ry.loc.tlm ||
      rx.loc.tlmInjected != ry.loc.tlmInjected || rx.mutantSpecs != ry.mutantSpecs) {
    return false;
  }
  return rx.analysis.sameResults(ry.analysis);
}

}  // namespace

CampaignResult mergeShards(const CampaignSpec& spec, const std::vector<ShardOutput>& outputs) {
  const std::uint64_t fnv = campaignSpecFnv(spec);
  if (outputs.empty()) {
    throw std::invalid_argument("merge: no shard outputs");
  }
  const int shardCount = outputs.front().shardCount;
  // Re-queued work may deliver a shard twice (the dispatcher's crash-recovery
  // retry can race its dead predecessor's already-written output), so
  // duplicates of one shard index are tolerated — they must re-run the same
  // units — and coverage means every index seen AT LEAST once.
  std::vector<const ShardOutput*> firstByIndex(static_cast<std::size_t>(
                                                  std::max(shardCount, 0)),
                                              nullptr);
  for (const auto& o : outputs) {
    if (o.specFnv != fnv) {
      throw std::invalid_argument("merge: shard " + std::to_string(o.shardIndex) +
                                  " was run against a different spec (fingerprint mismatch)");
    }
    if (o.shardCount != shardCount || o.shardIndex < 0 || o.shardIndex >= shardCount) {
      throw std::invalid_argument("merge: inconsistent shard coordinates (index " +
                                  std::to_string(o.shardIndex) + " of " +
                                  std::to_string(o.shardCount) + ")");
    }
    if (o.units.size() != o.result.items.size()) {
      throw std::invalid_argument("merge: shard " + std::to_string(o.shardIndex) +
                                  " unit/result count mismatch");
    }
    const ShardOutput*& first = firstByIndex[static_cast<std::size_t>(o.shardIndex)];
    if (first == nullptr) {
      first = &o;
    } else if (first->units != o.units) {
      throw std::invalid_argument("merge: duplicate outputs for shard " +
                                  std::to_string(o.shardIndex) +
                                  " cover different units");
    }
  }
  for (int s = 0; s < shardCount; ++s) {
    if (firstByIndex[static_cast<std::size_t>(s)] == nullptr) {
      throw std::invalid_argument("merge: plan has " + std::to_string(shardCount) +
                                  " shards but shard " + std::to_string(s) +
                                  " delivered no output");
    }
  }

  const std::size_t n = spec.items.size();
  struct Part {
    const ShardOutput* owner;
    const ShardUnit* unit;
    const CampaignItemResult* item;
  };
  std::vector<std::vector<Part>> byTask(n);
  for (const auto& o : outputs) {
    for (std::size_t k = 0; k < o.units.size(); ++k) {
      const ShardUnit& unit = o.units[k];
      if (unit.taskId >= n) {
        throw std::invalid_argument("merge: shard " + std::to_string(o.shardIndex) +
                                    " references task " + std::to_string(unit.taskId) +
                                    " outside the spec's " + std::to_string(n) + " items");
      }
      // Deduplicate by fragment id: a retried unit's copies must agree on
      // everything sameResults compares; keep the lowest-shard-index copy so
      // the merged result is independent of output (completion) order.
      Part part{&o, &unit, &o.result.items[k]};
      bool duplicate = false;
      for (Part& have : byTask[unit.taskId]) {
        if (*have.unit != unit) continue;
        if (!samePartResults(*have.item, *part.item)) {
          throw std::invalid_argument(
              "merge: duplicate copies of item " + std::to_string(unit.taskId) +
              " fragment [" + std::to_string(unit.mutantBegin) + ", " +
              std::to_string(unit.mutantEnd) + ") disagree (shards " +
              std::to_string(have.owner->shardIndex) + " and " +
              std::to_string(o.shardIndex) + ")");
        }
        if (o.shardIndex < have.owner->shardIndex) have = part;
        duplicate = true;
        break;
      }
      if (!duplicate) byTask[unit.taskId].push_back(part);
    }
  }

  CampaignResult merged;
  merged.name = spec.name;
  merged.items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& parts = byTask[i];
    if (parts.empty()) {
      throw std::invalid_argument("merge: item " + std::to_string(i) +
                                  " is covered by no shard");
    }
    if (parts.size() == 1 && parts[0].unit->wholeItem()) {
      merged.items.push_back(*parts[0].item);
      merged.items.back().taskId = i;
    } else {
      std::vector<const ShardOutput*> owners;
      std::vector<const CampaignItemResult*> items;
      std::vector<const ShardUnit*> units;
      for (const Part& p : parts) {
        owners.push_back(p.owner);
        items.push_back(p.item);
        units.push_back(p.unit);
      }
      merged.items.push_back(stitchFragments(i, spec.items[i].options.runMutationAnalysis,
                                             std::move(owners), std::move(items),
                                             std::move(units)));
    }
  }

  // Ledger aggregation: work and cache hits sum across shards (hits stay
  // attributed to the process that scored them); wall time is the elapsed
  // maximum, since shards run concurrently on separate processes/hosts.
  for (const auto& o : outputs) {
    merged.simSeconds += o.result.simSeconds;
    merged.goldenSeconds += o.result.goldenSeconds;
    merged.goldenCacheHits += o.result.goldenCacheHits;
    merged.prefixCacheHits += o.result.prefixCacheHits;
    merged.mutantCacheHits += o.result.mutantCacheHits;
    merged.diskHits += o.result.diskHits;
    merged.diskStores += o.result.diskStores;
    merged.diskEvictions += o.result.diskEvictions;
    merged.cyclesSimulated += o.result.cyclesSimulated;
    merged.cyclesSkipped += o.result.cyclesSkipped;
    merged.nativeCompiles += o.result.nativeCompiles;
    merged.nativeCacheHits += o.result.nativeCacheHits;
    merged.batchedMutants += o.result.batchedMutants;
    merged.wallSeconds = std::max(merged.wallSeconds, o.result.wallSeconds);
    merged.threadsUsed = std::max(merged.threadsUsed, o.result.threadsUsed);
  }
  XLV_INFO("shard") << "merged " << outputs.size() << " shards into '" << merged.name
                    << "': " << merged.items.size() << " items, "
                    << (merged.ok() ? "ok" : "with errors");
  return merged;
}

// --- wire format -------------------------------------------------------------

std::string encodeShardPlan(const ShardPlan& plan) {
  Encoder e(kPlanTag, kCampaignCodecVersion);
  e.u64("specFnv", plan.specFnv);
  e.u64("specItems", plan.specItems);
  e.beginList("shards", plan.shards.size());
  for (const auto& shard : plan.shards) {
    e.beginList("units", shard.size());
    for (const auto& u : shard) putUnit(e, u);
  }
  return e.take();
}

ShardPlan decodeShardPlan(std::string_view data) {
  Decoder d(data, kPlanTag, kCampaignCodecVersion);
  ShardPlan plan;
  plan.specFnv = d.u64("specFnv");
  plan.specItems = static_cast<std::size_t>(d.u64("specItems"));
  plan.shards.resize(d.beginList("shards"));
  for (auto& shard : plan.shards) {
    shard.resize(d.beginList("units"));
    for (auto& u : shard) u = getUnit(d);
  }
  d.finish();
  return plan;
}

std::string encodeShardOutput(const ShardOutput& output) {
  Encoder e(kOutputTag, kCampaignCodecVersion);
  e.u64("specFnv", output.specFnv);
  e.i64("shardIndex", output.shardIndex);
  e.i64("shardCount", output.shardCount);
  e.beginList("units", output.units.size());
  for (const auto& u : output.units) putUnit(e, u);
  // The result travels as a nested campaign-result document; its own header
  // keeps the two schema versions independently checkable.
  e.str("result", encodeCampaignResult(output.result));
  return e.take();
}

ShardOutput decodeShardOutput(std::string_view data) {
  Decoder d(data, kOutputTag, kCampaignCodecVersion);
  ShardOutput output;
  output.specFnv = d.u64("specFnv");
  output.shardIndex = static_cast<int>(d.i64("shardIndex"));
  output.shardCount = static_cast<int>(d.i64("shardCount"));
  output.units.resize(d.beginList("units"));
  for (auto& u : output.units) u = getUnit(d);
  output.result = decodeCampaignResult(d.str("result"));
  d.finish();
  return output;
}

// --- built-in specs ----------------------------------------------------------

std::vector<std::string> builtinCampaignSpecNames() { return {"smoke", "single", "failing"}; }

CampaignSpec builtinCampaignSpec(const std::string& preset) {
  if (preset == "smoke") {
    // The PR 2 acceptance sweep: 2 IPs x 2 sensor kinds x 2 STA corners,
    // quick cycle budget — the workload the cross-shard bit-identity
    // acceptance criterion is stated over.
    SweepSpec sweep;
    sweep.name = "shard-smoke";
    sweep.cases = {ips::buildFilterCase(), ips::buildDspCase()};
    sweep.base.testbenchCycles = 80;
    sweep.base.measureRtl = false;
    sweep.base.measureTlm = false;
    sweep.base.measureOptimized = false;
    sweep.axes.sensorKinds = {insertion::SensorKind::Razor, insertion::SensorKind::Counter};
    sweep.axes.corners = {sta::Corner::typical(), sta::Corner::slow()};
    return expandSweep(sweep);
  }
  if (preset == "single") {
    // One Counter item with its full DeltaDelay triple per sensor — enough
    // mutants to demonstrate mutant-range fragmentation of one item. The
    // caches are on so a --cache-dir run persists its golden trace and
    // per-mutant results for warm re-runs.
    CampaignSpec spec;
    spec.name = "shard-single";
    CampaignItem item;
    item.caseStudy = ips::buildFilterCase();
    item.options.sensorKind = insertion::SensorKind::Counter;
    item.options.testbenchCycles = 120;
    item.options.measureRtl = false;
    item.options.measureTlm = false;
    item.options.measureOptimized = false;
    item.options.useGoldenCache = true;
    item.options.useMutantCache = true;
    spec.items.push_back(std::move(item));
    return spec;
  }
  if (preset == "failing") {
    // Deterministically broken mid-campaign items (Counter with an invalid
    // hfRatio override — rejected by stageElaborate) surrounded by healthy
    // ones: the regression workload for CampaignResult::firstError and the
    // CLI's exit-code-3 contract. The breakage lives in the OPTIONS, so it
    // survives the wire round trip (a broken module would be healed by the
    // by-name case-study rebuild).
    CampaignSpec spec;
    spec.name = "shard-failing";
    auto makeItem = [](insertion::SensorKind kind, const std::string& label) {
      CampaignItem item;
      item.caseStudy = ips::buildFilterCase();
      item.options.sensorKind = kind;
      item.options.testbenchCycles = 40;
      item.options.measureRtl = false;
      item.options.measureOptimized = false;
      item.label = label;
      return item;
    };
    spec.items.push_back(makeItem(insertion::SensorKind::Razor, "ok-razor"));
    CampaignItem bad1 = makeItem(insertion::SensorKind::Counter, "bad-hf0");
    bad1.options.hfRatio = 0;
    spec.items.push_back(std::move(bad1));
    spec.items.push_back(makeItem(insertion::SensorKind::Counter, "ok-counter"));
    CampaignItem bad3 = makeItem(insertion::SensorKind::Counter, "bad-hf-negative");
    bad3.options.hfRatio = -4;
    spec.items.push_back(std::move(bad3));
    return spec;
  }
  throw std::invalid_argument("unknown campaign preset '" + preset +
                              "' (known: smoke, single, failing)");
}

}  // namespace xlv::campaign
