// Initiator/target sockets binding the TLM interfaces, plus the LT quantum
// keeper for temporally decoupled initiators.
#pragma once

#include <stdexcept>

#include "tlm/interfaces.h"

namespace xlv::tlm {

class TargetSocket;

/// Initiator-side socket: forwards calls to the bound target.
class InitiatorSocket {
 public:
  void bind(TargetSocket& target);
  bool bound() const noexcept { return target_ != nullptr; }

  void b_transport(GenericPayload& trans, Time& delay);
  SyncEnum nb_transport_fw(GenericPayload& trans, Phase& phase, Time& t);
  bool get_direct_mem_ptr(GenericPayload& trans, DmiRegion& region);
  std::size_t transport_dbg(GenericPayload& trans);

  /// Backward-path hook (targets call back through the initiator socket).
  void registerBw(NbTransportBwIf* bw) noexcept { bw_ = bw; }
  NbTransportBwIf* bw() const noexcept { return bw_; }

 private:
  TargetSocket* target_ = nullptr;
  NbTransportBwIf* bw_ = nullptr;
};

/// Target-side socket: carries the implementation pointers.
class TargetSocket {
 public:
  void registerBTransport(BTransportIf* impl) noexcept { b_ = impl; }
  void registerNbFw(NbTransportFwIf* impl) noexcept { nbFw_ = impl; }
  void registerDmi(DmiIf* impl) noexcept { dmi_ = impl; }
  void registerDebug(DebugIf* impl) noexcept { dbg_ = impl; }

  BTransportIf* bTransport() const noexcept { return b_; }
  NbTransportFwIf* nbFw() const noexcept { return nbFw_; }
  DmiIf* dmi() const noexcept { return dmi_; }
  DebugIf* debug() const noexcept { return dbg_; }

 private:
  BTransportIf* b_ = nullptr;
  NbTransportFwIf* nbFw_ = nullptr;
  DmiIf* dmi_ = nullptr;
  DebugIf* dbg_ = nullptr;
};

inline void InitiatorSocket::bind(TargetSocket& target) { target_ = &target; }

inline void InitiatorSocket::b_transport(GenericPayload& trans, Time& delay) {
  if (!target_ || !target_->bTransport()) {
    throw std::runtime_error("tlm: b_transport on unbound initiator socket");
  }
  target_->bTransport()->b_transport(trans, delay);
}

inline SyncEnum InitiatorSocket::nb_transport_fw(GenericPayload& trans, Phase& phase, Time& t) {
  if (!target_ || !target_->nbFw()) {
    throw std::runtime_error("tlm: nb_transport_fw on unbound initiator socket");
  }
  return target_->nbFw()->nb_transport_fw(trans, phase, t);
}

inline bool InitiatorSocket::get_direct_mem_ptr(GenericPayload& trans, DmiRegion& region) {
  if (!target_ || !target_->dmi()) return false;
  return target_->dmi()->get_direct_mem_ptr(trans, region);
}

inline std::size_t InitiatorSocket::transport_dbg(GenericPayload& trans) {
  if (!target_ || !target_->debug()) return 0;
  return target_->debug()->transport_dbg(trans);
}

/// Quantum keeper for loosely-timed modeling: initiators accumulate local
/// time and synchronize when the quantum is exceeded (TLM-2.0 LT style).
class QuantumKeeper {
 public:
  explicit QuantumKeeper(Time quantum = Time(100000)) : quantum_(quantum) {}

  void inc(Time t) noexcept { local_ += t; }
  Time localTime() const noexcept { return local_; }
  bool needSync() const noexcept { return quantum_ < local_ || quantum_ == local_; }
  /// Returns the time to consume at the sync point and resets local time.
  Time sync() noexcept {
    const Time t = local_;
    local_ = Time(0);
    return t;
  }

 private:
  Time quantum_;
  Time local_;
};

}  // namespace xlv::tlm
