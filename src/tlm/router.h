// Address-mapped TLM router: one target socket in, N initiator sockets out.
// The platform examples use it to build small memory-mapped systems around
// the abstracted IPs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tlm/socket.h"

namespace xlv::tlm {

class Router : public BTransportIf, public DebugIf {
 public:
  TargetSocket& socket() noexcept { return socket_; }

  Router();

  /// Map [base, base+size) to `target`; incoming addresses are rebased.
  void map(std::uint64_t base, std::uint64_t size, TargetSocket& target,
           std::string name = "");

  void b_transport(GenericPayload& trans, Time& delay) override;
  std::size_t transport_dbg(GenericPayload& trans) override;

  int regionCount() const noexcept { return static_cast<int>(regions_.size()); }
  const std::string& regionName(int i) const {
    return regions_.at(static_cast<std::size_t>(i))->name;
  }

 private:
  struct Region {
    std::uint64_t base = 0;
    std::uint64_t size = 0;
    InitiatorSocket out;
    std::string name;
  };

  Region* resolve(std::uint64_t addr);

  TargetSocket socket_;
  std::vector<std::unique_ptr<Region>> regions_;
};

}  // namespace xlv::tlm
