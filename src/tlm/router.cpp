#include "tlm/router.h"

#include <stdexcept>

namespace xlv::tlm {

Router::Router() {
  socket_.registerBTransport(this);
  socket_.registerDebug(this);
}

void Router::map(std::uint64_t base, std::uint64_t size, TargetSocket& target, std::string name) {
  for (const auto& r : regions_) {
    const bool overlap = base < r->base + r->size && r->base < base + size;
    if (overlap) {
      throw std::invalid_argument("tlm::Router: overlapping address regions");
    }
  }
  auto region = std::make_unique<Region>();
  region->base = base;
  region->size = size;
  region->name = std::move(name);
  region->out.bind(target);
  regions_.push_back(std::move(region));
}

Router::Region* Router::resolve(std::uint64_t addr) {
  for (auto& r : regions_) {
    if (addr >= r->base && addr < r->base + r->size) return r.get();
  }
  return nullptr;
}

void Router::b_transport(GenericPayload& trans, Time& delay) {
  Region* r = resolve(trans.address);
  if (r == nullptr) {
    trans.response = Response::AddressError;
    return;
  }
  const std::uint64_t orig = trans.address;
  trans.address -= r->base;
  r->out.b_transport(trans, delay);
  trans.address = orig;
}

std::size_t Router::transport_dbg(GenericPayload& trans) {
  Region* r = resolve(trans.address);
  if (r == nullptr) {
    trans.response = Response::AddressError;
    return 0;
  }
  const std::uint64_t orig = trans.address;
  trans.address -= r->base;
  const std::size_t n = r->out.transport_dbg(trans);
  trans.address = orig;
  return n;
}

}  // namespace xlv::tlm
