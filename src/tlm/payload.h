// Generic payload and simulated time, modeled after OSCI TLM-2.0.
//
// The paper's flow wraps abstracted IPs behind TLM-2.0 interfaces; this
// library provides the payload/phase/time vocabulary those interfaces need.
// It is deliberately a compact re-implementation, not a SystemC dependency:
// the flow only requires the communication primitives, not the SystemC
// kernel (the abstracted models carry their own scheduler()).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xlv::tlm {

/// Simulated time in picoseconds (TLM-2.0's sc_time analogue).
class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::uint64_t ps) : ps_(ps) {}

  constexpr std::uint64_t ps() const noexcept { return ps_; }
  constexpr double ns() const noexcept { return static_cast<double>(ps_) / 1e3; }

  constexpr Time& operator+=(Time o) noexcept {
    ps_ += o.ps_;
    return *this;
  }
  friend constexpr Time operator+(Time a, Time b) noexcept { return Time(a.ps_ + b.ps_); }
  friend constexpr bool operator==(Time a, Time b) noexcept { return a.ps_ == b.ps_; }
  friend constexpr bool operator<(Time a, Time b) noexcept { return a.ps_ < b.ps_; }
  friend constexpr bool operator<=(Time a, Time b) noexcept { return a.ps_ <= b.ps_; }

 private:
  std::uint64_t ps_ = 0;
};

enum class Command { Read, Write, Ignore };

enum class Response {
  Ok,
  AddressError,
  CommandError,
  GenericError,
  Incomplete,  ///< initial state, must be overwritten by the target
};

const char* responseName(Response r);

/// TLM-2.0 generic payload (the subset the flow exercises: command, address,
/// data, response status, DMI hint).
class GenericPayload {
 public:
  Command command = Command::Ignore;
  std::uint64_t address = 0;
  std::vector<std::uint8_t> data;
  Response response = Response::Incomplete;
  bool dmiAllowed = false;

  void setRead(std::uint64_t addr, std::size_t nbytes) {
    command = Command::Read;
    address = addr;
    data.assign(nbytes, 0);
    response = Response::Incomplete;
  }

  void setWrite(std::uint64_t addr, std::vector<std::uint8_t> bytes) {
    command = Command::Write;
    address = addr;
    data = std::move(bytes);
    response = Response::Incomplete;
  }

  /// Little-endian word helpers (the platform examples use 32-bit words).
  void setWriteWord(std::uint64_t addr, std::uint32_t word);
  std::uint32_t dataWord() const;

  bool ok() const noexcept { return response == Response::Ok; }
};

/// AT protocol phases (TLM-2.0 base protocol).
enum class Phase { BeginReq, EndReq, BeginResp, EndResp };

/// Return codes of the non-blocking interface.
enum class SyncEnum { Accepted, Updated, Completed };

}  // namespace xlv::tlm
