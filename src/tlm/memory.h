// A simple TLM target memory implementing all four TLM-2.0 interfaces.
// Used by the platform examples (virtual-platform style, paper Section 2.4).
#pragma once

#include <cstdint>
#include <vector>

#include "tlm/socket.h"

namespace xlv::tlm {

class Memory : public BTransportIf, public NbTransportFwIf, public DmiIf, public DebugIf {
 public:
  Memory(std::size_t bytes, Time readLatency = Time(10000), Time writeLatency = Time(10000));

  TargetSocket& socket() noexcept { return socket_; }

  // BTransportIf
  void b_transport(GenericPayload& trans, Time& delay) override;
  // NbTransportFwIf: base-protocol degenerate completion (AT targets may
  // complete early by returning Completed on BeginReq).
  SyncEnum nb_transport_fw(GenericPayload& trans, Phase& phase, Time& t) override;
  // DmiIf
  bool get_direct_mem_ptr(GenericPayload& trans, DmiRegion& region) override;
  // DebugIf
  std::size_t transport_dbg(GenericPayload& trans) override;

  std::uint8_t* data() noexcept { return store_.data(); }
  std::size_t size() const noexcept { return store_.size(); }

  std::uint32_t word(std::uint64_t addr) const;
  void setWord(std::uint64_t addr, std::uint32_t value);

 private:
  void access(GenericPayload& trans);

  TargetSocket socket_;
  std::vector<std::uint8_t> store_;
  Time readLatency_, writeLatency_;
};

}  // namespace xlv::tlm
