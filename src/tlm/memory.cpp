#include "tlm/memory.h"

#include <cstring>

namespace xlv::tlm {

const char* responseName(Response r) {
  switch (r) {
    case Response::Ok: return "OK";
    case Response::AddressError: return "ADDRESS_ERROR";
    case Response::CommandError: return "COMMAND_ERROR";
    case Response::GenericError: return "GENERIC_ERROR";
    case Response::Incomplete: return "INCOMPLETE";
  }
  return "?";
}

void GenericPayload::setWriteWord(std::uint64_t addr, std::uint32_t word) {
  std::vector<std::uint8_t> bytes(4);
  for (int i = 0; i < 4; ++i) bytes[static_cast<std::size_t>(i)] = (word >> (8 * i)) & 0xFF;
  setWrite(addr, std::move(bytes));
}

std::uint32_t GenericPayload::dataWord() const {
  std::uint32_t w = 0;
  for (std::size_t i = 0; i < data.size() && i < 4; ++i) {
    w |= static_cast<std::uint32_t>(data[i]) << (8 * i);
  }
  return w;
}

Memory::Memory(std::size_t bytes, Time readLatency, Time writeLatency)
    : store_(bytes, 0), readLatency_(readLatency), writeLatency_(writeLatency) {
  socket_.registerBTransport(this);
  socket_.registerNbFw(this);
  socket_.registerDmi(this);
  socket_.registerDebug(this);
}

void Memory::access(GenericPayload& trans) {
  if (trans.address + trans.data.size() > store_.size()) {
    trans.response = Response::AddressError;
    return;
  }
  switch (trans.command) {
    case Command::Read:
      std::memcpy(trans.data.data(), store_.data() + trans.address, trans.data.size());
      trans.response = Response::Ok;
      break;
    case Command::Write:
      std::memcpy(store_.data() + trans.address, trans.data.data(), trans.data.size());
      trans.response = Response::Ok;
      break;
    case Command::Ignore:
      trans.response = Response::Ok;
      break;
  }
}

void Memory::b_transport(GenericPayload& trans, Time& delay) {
  access(trans);
  delay += trans.command == Command::Write ? writeLatency_ : readLatency_;
  trans.dmiAllowed = true;
}

SyncEnum Memory::nb_transport_fw(GenericPayload& trans, Phase& phase, Time& t) {
  if (phase != Phase::BeginReq) {
    trans.response = Response::GenericError;
    return SyncEnum::Completed;
  }
  access(trans);
  t += trans.command == Command::Write ? writeLatency_ : readLatency_;
  phase = Phase::BeginResp;
  return SyncEnum::Completed;  // early completion, base protocol shortcut
}

bool Memory::get_direct_mem_ptr(GenericPayload& trans, DmiRegion& region) {
  (void)trans;
  region.base = store_.data();
  region.startAddress = 0;
  region.endAddress = store_.size() - 1;
  region.readAllowed = true;
  region.writeAllowed = true;
  return true;
}

std::size_t Memory::transport_dbg(GenericPayload& trans) {
  const std::size_t n =
      std::min<std::size_t>(trans.data.size(),
                            trans.address < store_.size() ? store_.size() - trans.address : 0);
  if (trans.command == Command::Read) {
    std::memcpy(trans.data.data(), store_.data() + trans.address, n);
  } else if (trans.command == Command::Write) {
    std::memcpy(store_.data() + trans.address, trans.data.data(), n);
  }
  trans.response = Response::Ok;
  return n;
}

std::uint32_t Memory::word(std::uint64_t addr) const {
  std::uint32_t w = 0;
  for (int i = 0; i < 4; ++i) {
    w |= static_cast<std::uint32_t>(store_.at(addr + static_cast<std::uint64_t>(i)))
         << (8 * i);
  }
  return w;
}

void Memory::setWord(std::uint64_t addr, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    store_.at(addr + static_cast<std::uint64_t>(i)) = (value >> (8 * i)) & 0xFF;
  }
}

}  // namespace xlv::tlm
