// TLM-2.0 interface set: blocking, non-blocking, direct-memory and debug —
// "the OSCI TLM-2.0 standard defines a set of interfaces (i.e., blocking,
// non-blocking, direct memory, and debug interfaces)" (paper Section 2.4).
#pragma once

#include <cstdint>

#include "tlm/payload.h"

namespace xlv::tlm {

/// Blocking transport: the loosely-timed (LT) primitive b_transport().
class BTransportIf {
 public:
  virtual ~BTransportIf() = default;
  virtual void b_transport(GenericPayload& trans, Time& delay) = 0;
};

/// Non-blocking transport, forward path: the approximately-timed (AT)
/// primitive nb_transport_fw().
class NbTransportFwIf {
 public:
  virtual ~NbTransportFwIf() = default;
  virtual SyncEnum nb_transport_fw(GenericPayload& trans, Phase& phase, Time& t) = 0;
};

/// Non-blocking transport, backward path (target -> initiator).
class NbTransportBwIf {
 public:
  virtual ~NbTransportBwIf() = default;
  virtual SyncEnum nb_transport_bw(GenericPayload& trans, Phase& phase, Time& t) = 0;
};

struct DmiRegion {
  std::uint8_t* base = nullptr;
  std::uint64_t startAddress = 0;
  std::uint64_t endAddress = 0;
  bool readAllowed = false;
  bool writeAllowed = false;
};

/// Direct memory interface.
class DmiIf {
 public:
  virtual ~DmiIf() = default;
  virtual bool get_direct_mem_ptr(GenericPayload& trans, DmiRegion& region) = 0;
};

/// Debug transport: data access with no timing side effects.
class DebugIf {
 public:
  virtual ~DebugIf() = default;
  virtual std::size_t transport_dbg(GenericPayload& trans) = 0;
};

}  // namespace xlv::tlm
