// Automatic delay-sensor insertion (paper Section 4.2).
//
// Given an IP module and an STA report, one sensor is instantiated at the
// endpoint of every critical path, "by means of automatic modifications of
// the RTL model": new sensor instances are wired to the endpoint registers,
// and new top-level ports are added for the support clocks and the sensor
// outputs (METRIC_OK, MEAS_VAL) — exactly the transformation the paper
// describes.
//
// Endpoint selection: only scalar register endpoints receive sensors.
// Array endpoints (register files, memories) and combinational output-port
// endpoints are reported but skipped — in a synthesis flow those are handled
// by memory macros and output-constraint budgeting respectively.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"
#include "sensors/counter_monitor.h"
#include "sensors/razor.h"
#include "sta/sta.h"

namespace xlv::insertion {

enum class SensorKind { Razor, Counter };

/// The canonical lower-case kind name shared by campaign labels, prefix
/// cache keys and the wire codecs (one mapping — renames would otherwise
/// silently change spec fingerprints).
constexpr const char* sensorKindName(SensorKind k) noexcept {
  return k == SensorKind::Razor ? "razor" : "counter";
}

struct InsertionConfig {
  SensorKind kind = SensorKind::Razor;
  /// Counter CPS extraction (the "intermediate variable used to extract
  /// single critical bits from a multi-bit signal" of Section 4.2):
  /// -1 (default) observes the register's parity (XOR-reduction, toggles on
  /// any odd-bit change); >= 0 observes that bit (clamped to the width).
  int monitoredBit = -1;
  sensors::CounterConfig counterCfg;
  /// Names of the ports added to the augmented IP.
  std::string recoveryPortName = "recovery_en";
  std::string metricOkPortName = "metric_ok";
  std::string measValPortName = "meas_val";
  std::string hfClockName = "hclk";
};

/// One inserted sensor and the names of its observable signals in the
/// augmented module (and, unchanged, in the elaborated design).
struct InsertedSensor {
  std::string endpointName;      ///< monitored register
  std::string instanceName;      ///< sensor instance
  std::string errorSignal;       ///< Razor: e_<i>;  Counter: "" (use outOk)
  std::string qSignal;           ///< Razor: corrected-output q_<i>
  std::string measValSignal;     ///< Counter: mv_<i>
  std::string outOkSignal;       ///< Counter: ok_<i>
  double endpointArrivalPs = 0;  ///< from the STA report (drives delta-mutant sizing)
};

struct InsertionResult {
  std::shared_ptr<ir::Module> augmented;
  std::vector<InsertedSensor> sensors;
  int skippedEndpoints = 0;       ///< critical endpoints not eligible for a sensor
  double sensorAreaGates = 0.0;   ///< added area estimate
};

/// Augment `ip` with one sensor per critical endpoint of `report`.
/// Throws std::invalid_argument when the module has no main clock or when a
/// Counter insertion cannot add a high-frequency clock port.
InsertionResult insertSensors(const ir::Module& ip, const sta::StaReport& report,
                              const InsertionConfig& cfg);

/// Deep-copy a module under a new name (symbols keep their ids; statement
/// trees are shared — they are immutable).
std::shared_ptr<ir::Module> cloneModule(const ir::Module& m, const std::string& newName);

}  // namespace xlv::insertion
