#include "insertion/insertion.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "ir/walk.h"
#include "util/log.h"

namespace xlv::insertion {

using namespace xlv::ir;

std::shared_ptr<Module> cloneModule(const Module& m, const std::string& newName) {
  auto out = std::make_shared<Module>(newName);
  for (const auto& s : m.symbols()) out->addSymbol(s);
  for (const auto& p : m.processes()) out->addProcess(p);
  for (const auto& i : m.instances()) out->addInstance(i);
  for (const auto& ai : m.arrayInits()) out->addArrayInit(ai);
  return out;
}

namespace {

Sig addSymbol(Module& m, const std::string& name, SymKind kind, Type t, PortDir dir,
              ClockRole role = ClockRole::None, std::uint64_t init = 0, bool hasInit = false) {
  if (m.findSymbol(name) != kNoSymbol) {
    throw std::invalid_argument("insertion: symbol '" + name + "' already exists in IP");
  }
  Symbol s;
  s.name = name;
  s.kind = kind;
  s.type = t;
  s.dir = dir;
  s.clock = role;
  s.initValue = init;
  s.hasInit = hasInit;
  const SymbolId id = m.addSymbol(std::move(s));
  return Sig{id, t};
}

SymbolId findMainClock(const Module& m) {
  for (std::size_t i = 0; i < m.symbols().size(); ++i) {
    if (m.symbols()[i].clock == ClockRole::Main) return static_cast<SymbolId>(i);
  }
  return kNoSymbol;
}

SymbolId findHfClock(const Module& m) {
  for (std::size_t i = 0; i < m.symbols().size(); ++i) {
    if (m.symbols()[i].clock == ClockRole::HighFreq) return static_cast<SymbolId>(i);
  }
  return kNoSymbol;
}

/// Registers of the module: symbols assigned by synchronous processes.
std::set<SymbolId> moduleRegisters(const Module& m) {
  std::set<SymbolId> regs;
  for (const auto& p : m.processes()) {
    if (!p.isSync) continue;
    collectWrites(*p.body, regs);
  }
  return regs;
}

/// A critical endpoint is sensor-eligible when it names a scalar register
/// of the top module (not an array, not a hierarchical child, not a
/// combinational output-port endpoint — those are budgeted through output
/// constraints in a synthesis flow, not monitored by FF-replacement sensors).
bool eligible(const Module& m, const std::set<SymbolId>& regs, const sta::PathRecord& path,
              std::string* why) {
  if (path.endpointName.find('.') != std::string::npos) {
    *why = "endpoint inside child instance";
    return false;
  }
  const SymbolId sym = m.findSymbol(path.endpointName);
  if (sym == kNoSymbol) {
    *why = "endpoint not found in module";
    return false;
  }
  const Symbol& s = m.symbol(sym);
  if (s.kind == SymKind::Array) {
    *why = "array endpoint (memory macro)";
    return false;
  }
  if (s.kind != SymKind::Signal) {
    *why = "endpoint is not a signal";
    return false;
  }
  if (regs.count(sym) == 0) {
    *why = "combinational endpoint (output port constraint)";
    return false;
  }
  return true;
}

}  // namespace

InsertionResult insertSensors(const ir::Module& ip, const sta::StaReport& report,
                              const InsertionConfig& cfg) {
  InsertionResult result;
  result.augmented = cloneModule(
      ip, ip.name() + (cfg.kind == SensorKind::Razor ? "_razor" : "_counter"));
  Module& m = *result.augmented;

  const SymbolId clk = findMainClock(m);
  if (clk == kNoSymbol) {
    throw std::invalid_argument("insertion: IP '" + ip.name() + "' has no main clock");
  }
  const Sig clkSig{clk, m.symbol(clk).type};

  // Support ports (Section 4.2: "new ports are also added to the top-level
  // IP model, for the connection of the support clocks and of the delay
  // sensor outputs").
  Sig recovery, hclkSig;
  if (cfg.kind == SensorKind::Razor) {
    recovery = addSymbol(m, cfg.recoveryPortName, SymKind::Signal, Type{1, false}, PortDir::In);
  } else {
    const SymbolId existing = findHfClock(m);
    if (existing != kNoSymbol) {
      hclkSig = Sig{existing, m.symbol(existing).type};
    } else {
      hclkSig = addSymbol(m, cfg.hfClockName, SymKind::Signal, Type{1, false}, PortDir::In,
                          ClockRole::HighFreq);
    }
  }
  const Sig metricOk =
      addSymbol(m, cfg.metricOkPortName, SymKind::Signal, Type{1, false}, PortDir::Out);
  Sig measValPort;
  if (cfg.kind == SensorKind::Counter) {
    measValPort = addSymbol(m, cfg.measValPortName, SymKind::Signal,
                            Type{cfg.counterCfg.measWidth, false}, PortDir::Out);
  }

  // One sensor per critical endpoint.
  std::vector<Ex> okTerms;     // per-sensor "no error" expressions
  std::vector<Ex> measTerms;   // per-sensor measurement values
  int idx = 0;
  const std::set<SymbolId> regs = moduleRegisters(m);
  for (const auto& path : report.criticalPaths()) {
    std::string why;
    if (!eligible(m, regs, path, &why)) {
      XLV_INFO("insertion") << "skipping endpoint '" << path.endpointName << "': " << why;
      ++result.skippedEndpoints;
      continue;
    }
    const SymbolId target = m.findSymbol(path.endpointName);
    const Type tt = m.symbol(target).type;
    const Sig targetSig{target, tt};
    const std::string suffix = std::to_string(idx);

    InsertedSensor info;
    info.endpointName = path.endpointName;
    info.endpointArrivalPs = path.arrivalPs;

    if (cfg.kind == SensorKind::Razor) {
      auto razor = sensors::buildRazor(tt.width);
      const Sig e = addSymbol(m, "rz_e_" + suffix, SymKind::Signal, Type{1, false}, PortDir::None);
      const Sig q = addSymbol(m, "rz_q_" + suffix, SymKind::Signal, tt, PortDir::None);
      Instance inst;
      inst.name = "razor" + suffix;
      inst.module = razor;
      inst.bindings = {
          {razor->findSymbol(sensors::RazorPorts::clk), clkSig.id},
          {razor->findSymbol(sensors::RazorPorts::d), targetSig.id},
          {razor->findSymbol(sensors::RazorPorts::recover), recovery.id},
          {razor->findSymbol(sensors::RazorPorts::q), q.id},
          {razor->findSymbol(sensors::RazorPorts::error), e.id},
      };
      m.addInstance(std::move(inst));
      okTerms.push_back(bnot(Ex(e)));
      info.instanceName = "razor" + suffix;
      info.errorSignal = "rz_e_" + suffix;
      info.qSignal = "rz_q_" + suffix;
      result.sensorAreaGates += sensors::razorAreaGates(tt.width);
    } else {
      // CPS selection: by default the full endpoint register is monitored
      // (every value change observable — a 1-bit condensation cannot
      // distinguish all transitions); with monitoredBit >= 0, one critical
      // bit is extracted through an intermediate variable, the literal
      // Section 4.2 description.
      SymbolId cpsSym = targetSig.id;
      sensors::CounterConfig ccfg = cfg.counterCfg;
      ccfg.cpsWidth = tt.width;
      if (cfg.monitoredBit >= 0) {
        const int bit = std::min(cfg.monitoredBit, tt.width - 1);
        ccfg.cpsWidth = 1;
        const Sig mon =
            addSymbol(m, "cps_" + suffix, SymKind::Signal, Type{1, false}, PortDir::None);
        Process p;
        p.name = "cps_extract_" + suffix;
        p.isSync = false;
        p.body = makeBlock(
            {makeAssign(mon.id, makeSlice(makeRef(targetSig.id, tt), bit, bit))});
        p.sensitivity = deriveSensitivity(*p.body);
        m.addProcess(std::move(p));
        cpsSym = mon.id;
      }
      auto ctr = sensors::buildCounterMonitor(ccfg);
      const Sig mv = addSymbol(m, "mv_" + suffix, SymKind::Signal,
                               Type{cfg.counterCfg.measWidth, false}, PortDir::None);
      const Sig ok = addSymbol(m, "ok_" + suffix, SymKind::Signal, Type{1, false}, PortDir::None);
      Instance inst;
      inst.name = "ctr" + suffix;
      inst.module = ctr;
      inst.bindings = {
          {ctr->findSymbol(sensors::CounterPorts::clk), clkSig.id},
          {ctr->findSymbol(sensors::CounterPorts::hclk), hclkSig.id},
          {ctr->findSymbol(sensors::CounterPorts::cps), cpsSym},
          {ctr->findSymbol(sensors::CounterPorts::measVal), mv.id},
          {ctr->findSymbol(sensors::CounterPorts::outOk), ok.id},
      };
      m.addInstance(std::move(inst));
      okTerms.push_back(Ex(ok));
      measTerms.push_back(Ex(mv));
      info.instanceName = "ctr" + suffix;
      info.measValSignal = "mv_" + suffix;
      info.outOkSignal = "ok_" + suffix;
      result.sensorAreaGates += sensors::counterAreaGates(ccfg);
    }
    result.sensors.push_back(std::move(info));
    ++idx;
  }

  // METRIC_OK aggregation: all sensors content.
  {
    Ex all = okTerms.empty() ? lit(1, 1) : okTerms.front();
    for (std::size_t i = 1; i < okTerms.size(); ++i) all = all & okTerms[i];
    Process p;
    p.name = "metric_ok_p";
    p.isSync = false;
    p.body = makeBlock({makeAssign(metricOk.id, all.ptr())});
    p.sensitivity = deriveSensitivity(*p.body);
    m.addProcess(std::move(p));
  }
  // MEAS_VAL aggregation for Counter insertions (only one sensor measures a
  // nonzero delay per activated mutant, so an OR-tree is exact in analysis
  // use and conservative otherwise).
  if (cfg.kind == SensorKind::Counter) {
    Ex any = measTerms.empty() ? lit(cfg.counterCfg.measWidth, 0) : measTerms.front();
    for (std::size_t i = 1; i < measTerms.size(); ++i) any = any | measTerms[i];
    Process p;
    p.name = "meas_val_p";
    p.isSync = false;
    p.body = makeBlock({makeAssign(measValPort.id, any.ptr())});
    p.sensitivity = deriveSensitivity(*p.body);
    m.addProcess(std::move(p));
  }

  return result;
}

}  // namespace xlv::insertion
