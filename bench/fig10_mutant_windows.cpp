// Figures 9-10: the three mutant classes and their application points in
// the scheduler, against the sensor activity windows. Reproduced by
// activating each class on the same signal and showing where the update
// lands and which sensor observes it.
#include <cstdio>

#include "abstraction/tlm_model.h"
#include "bench/common.h"
#include "insertion/insertion.h"
#include "ir/builder.h"
#include "ir/elaborate.h"
#include "mutation/adam.h"
#include "sta/sta.h"

int main() {
  using namespace xlv;
  using namespace xlv::ir;
  using mutation::MutantKind;
  bench::banner("Figures 9/10 — mutant classes vs sensor activity windows", "paper Figs. 9-10");

  constexpr int kRatio = 10;
  ModuleBuilder mb("dut");
  auto clk = mb.clock("clk");
  auto din = mb.in("din", 8);
  auto dout = mb.out("dout", 8);
  auto r = mb.signal("r", 8);
  mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, Ex(din) ^ Ex(r)); });
  mb.comb("drive", [&](ProcBuilder& p) { p.assign(dout, r); });
  auto ip = mb.finish();

  sta::StaConfig staCfg;
  staCfg.clockPeriodPs = 1200;
  staCfg.thresholdFraction = 1.0;
  auto report = sta::analyze(elaborate(*ip), staCfg);

  for (auto kind : {insertion::SensorKind::Razor, insertion::SensorKind::Counter}) {
    insertion::InsertionConfig icfg;
    icfg.kind = kind;
    auto ins = insertion::insertSensors(*ip, report, icfg);
    Design d = elaborate(*ins.augmented);
    const int hf = kind == insertion::SensorKind::Counter ? kRatio : 0;

    std::printf("%s sensor:\n", kind == insertion::SensorKind::Razor ? "Razor" : "Counter");
    std::printf("  mutant class        | applied at                     | E / MEAS_VAL\n");
    std::printf("  --------------------+--------------------------------+-------------\n");

    std::vector<mutation::MutantSpec> specs;
    if (kind == insertion::SensorKind::Razor) {
      specs = {{"r", MutantKind::MinDelay, 0}, {"r", MutantKind::MaxDelay, 0}};
    } else {
      specs = {{"r", MutantKind::DeltaDelay, 2},
               {"r", MutantKind::DeltaDelay, 5},
               {"r", MutantKind::DeltaDelay, 9}};
    }
    auto injected = mutation::injectMutants(d, specs);
    for (std::size_t mi = 0; mi < specs.size(); ++mi) {
      abstraction::TlmIpModel<hdt::FourState> m(injected,
                                                abstraction::TlmModelConfig{hf, false});
      m.activateMutant(static_cast<int>(mi));
      for (int c = 0; c < 6; ++c) {
        m.setInputByName("din", 1);
        if (kind == insertion::SensorKind::Razor) m.setInputByName("recovery_en", 1);
        m.scheduler();
      }
      char where[64];
      char seen[32];
      switch (specs[mi].kind) {
        case MutantKind::MinDelay:
          std::snprintf(where, sizeof where, "first delta after rising edge");
          break;
        case MutantKind::MaxDelay:
          std::snprintf(where, sizeof where, "just before the falling edge");
          break;
        case MutantKind::DeltaDelay:
          std::snprintf(where, sizeof where, "HF period %d of %d", specs[mi].deltaTicks, kRatio);
          break;
      }
      if (kind == insertion::SensorKind::Razor) {
        std::snprintf(seen, sizeof seen, "E = %llu",
                      static_cast<unsigned long long>(m.valueUintByName("rz_e_0")));
      } else {
        std::snprintf(seen, sizeof seen, "MEAS_VAL = %llu",
                      static_cast<unsigned long long>(m.valueUintByName("meas_val")));
      }
      std::printf("  %-19s | %-30s | %s\n", mutation::mutantKindName(specs[mi].kind), where,
                  seen);
    }
    std::printf("\n");
  }
  std::printf(
      "As in Fig. 10: min/max mutants cover the two extremes of the Razor window\n"
      "(rising edge .. falling edge), while delta mutants land at a specific HF\n"
      "period, which the Counter-based sensor measures exactly.\n");
  return 0;
}
