// Ablation E: RTL saboteur campaign vs TLM mutant campaign.
//
// The paper's core argument (Sections 1-3): verifying embedded sensors with
// state-of-the-art RTL fault injection (saboteurs [41] / RTL mutants [4])
// "makes the already slow RTL simulation even more time consuming", whereas
// moving the campaign to the abstracted TLM model runs each injection at TLM
// speed. This bench times both campaigns end to end on the same augmented
// IP with the same per-injection cycle budget.
#include "bench/common.h"
#include "core/flow.h"
#include "mutation/saboteur.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace xlv;
  bench::banner("Ablation E — RTL saboteur campaign vs TLM mutant campaign",
                "paper Sections 1-3 motivation");

  util::Table t({"Digital IP", "Injections", "RTL campaign (s)", "TLM campaign (s)",
                 "Campaign speedup"});
  for (const auto& cs : bench::allCases()) {
    core::FlowOptions opts;
    opts.sensorKind = insertion::SensorKind::Razor;
    opts.testbenchCycles = bench::scaled(cs.testbench.cycles);
    opts.measureRtl = false;
    opts.measureOptimized = false;
    opts.runMutationAnalysis = false;
    const core::FlowReport flow = core::runFlow(cs, opts);
    const std::uint64_t cycles = opts.testbenchCycles;

    // Campaign size: one injection per sensor (saboteur and mutant alike).
    const std::size_t n = flow.sensors.size();

    // --- RTL saboteur campaign: re-simulate the event-driven kernel once
    // --- per injection, with the corresponding transport delay active.
    util::Timer rtlTimer;
    for (const auto& sensor : flow.sensors) {
      rtl::RtlSimulator<hdt::FourState> sim(
          flow.augmentedDesign, rtl::KernelConfig{cs.periodPs, 0, 100000});
      sim.setStimulus([&](std::uint64_t c, rtl::RtlSimulator<hdt::FourState>& s) {
        cs.testbench.drive(
            c, [&](const std::string& nme, std::uint64_t v) { s.setInputByName(nme, v); });
        s.setInputByName("recovery_en", 1);
      });
      sim.injectDelay(flow.augmentedDesign.findSymbol(sensor.endpointName),
                      cs.periodPs / 4);
      sim.runCycles(cycles);
    }
    const double rtlSeconds = rtlTimer.seconds();

    // --- TLM mutant campaign: one abstracted-model run per injection.
    auto specs = std::vector<mutation::MutantSpec>{};
    for (const auto& sensor : flow.sensors) {
      specs.push_back({sensor.endpointName, mutation::MutantKind::MinDelay, 0});
    }
    auto injected = mutation::injectMutants(flow.augmentedDesign, specs);
    util::Timer tlmTimer;
    for (std::size_t k = 0; k < specs.size(); ++k) {
      abstraction::TlmIpModel<hdt::FourState> model(injected,
                                                    abstraction::TlmModelConfig{0, false});
      model.activateMutant(static_cast<int>(k));
      for (std::uint64_t c = 0; c < cycles; ++c) {
        cs.testbench.drive(c, [&](const std::string& nme, std::uint64_t v) {
          model.setInputByName(nme, v);
        });
        model.setInputByName("recovery_en", 1);
        model.scheduler();
      }
    }
    const double tlmSeconds = tlmTimer.seconds();

    t.addRow({cs.name, std::to_string(n), util::Table::fixed(rtlSeconds, 3),
              util::Table::fixed(tlmSeconds, 3),
              util::Table::fixed(rtlSeconds / std::max(1e-9, tlmSeconds), 2) + "x"});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nShape: the whole-campaign gap is the per-simulation speedup times the\n"
      "campaign size amortization — 'applying mutation analysis required to\n"
      "simulate the TLM versions once per inserted sensor: this further increases\n"
      "the effectiveness of the fast TLM simulation' (paper Section 8.5).\n");
  return 0;
}
