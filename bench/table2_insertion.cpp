// Table 2: characteristics of the insertion of delay monitors.
// Columns: STA time (s), Critical paths (#), Sensors type/inserted (#),
// RTL (loc) after augmentation.
#include "abstraction/emit_cpp.h"
#include "abstraction/emit_vhdl.h"
#include "bench/common.h"
#include "insertion/insertion.h"
#include "ir/elaborate.h"
#include "sta/sta.h"
#include "util/table.h"

int main() {
  using namespace xlv;
  bench::banner("Table 2 — insertion of delay monitors", "paper Table 2");

  util::Table t({"Digital IP", "STA time (s)", "Critical paths (#)", "Sensor type",
                 "Inserted (#)", "RTL (loc)", "Sensor area (gates)"});
  for (const auto& cs : bench::allCases()) {
    ir::Design d = ir::elaborate(*cs.module);
    sta::StaConfig staCfg;
    staCfg.clockPeriodPs = static_cast<double>(cs.periodPs);
    staCfg.spreadFraction = cs.staSpreadFraction;
    const sta::StaReport report = sta::analyze(d, staCfg);

    bool first = true;
    for (auto kind : {insertion::SensorKind::Razor, insertion::SensorKind::Counter}) {
      insertion::InsertionConfig icfg;
      icfg.kind = kind;
      auto ins = insertion::insertSensors(*cs.module, report, icfg);
      const int loc = abstraction::countLines(abstraction::emitVhdl(*ins.augmented));
      t.addRow({first ? cs.name : "", first ? util::Table::fixed(report.analysisSeconds, 4) : "",
                first ? std::to_string(report.criticalCount) : "",
                kind == insertion::SensorKind::Razor ? "Razor" : "Counter",
                std::to_string(ins.sensors.size()), std::to_string(loc),
                std::to_string(static_cast<long>(ins.sensorAreaGates))});
      first = false;
    }
    t.addSeparator();
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nPaper's values: Plasma 9.45s STA/29 paths/29+29 sensors (2308/2844 loc);"
      "\n                DSP 8.51s/34/34+34 (3025/14959 loc); Filter 8.22s/24/24+24 (1008/6178 loc)."
      "\nOur STA is an estimation engine, so its runtime is micro-seconds, not seconds;"
      "\ncritical-path counts differ with the slack distributions of our re-implemented IPs."
      "\nArray/memory endpoints are served by macros and excluded from sensor insertion.\n");
  return 0;
}
