// Figures 6-8: the RTL scheduling (Fig. 6a), the TLM scheduler code
// (Fig. 6b), the cycle->transaction mapping for the Razor sensor (Fig. 7)
// and the dual-clock scheduler for the Counter-based sensor (Fig. 8).
// Reproduced by instrumenting both engines on the same design and showing
// that one TLM transaction covers exactly one RTL clock cycle, with the HF
// periods wrapped inside the transaction.
#include <cstdio>

#include "abstraction/abstractor.h"
#include "bench/common.h"
#include "ir/builder.h"
#include "ir/elaborate.h"
#include "rtl/kernel.h"

int main() {
  using namespace xlv;
  using namespace xlv::ir;
  bench::banner("Figures 6/7/8 — RTL scheduling vs TLM transactions", "paper Figs. 6-8");

  ModuleBuilder mb("dual");
  auto clk = mb.clock("clk");
  auto hclk = mb.clock("hclk", ClockRole::HighFreq);
  auto dIn = mb.in("d", 8);
  auto r = mb.signal("r", 8);
  auto ticks = mb.signal("ticks", 16);
  auto y = mb.out("y", 16);
  mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, dIn); });
  mb.onRising("cnt", hclk, [&](ProcBuilder& p) { p.assign(ticks, Ex(ticks) + 1u); });
  mb.comb("c", [&](ProcBuilder& p) { p.assign(y, Ex(ticks) + zext(Ex(r), 16)); });
  Design d = elaborate(*mb.finish());

  constexpr int kRatio = 10;
  rtl::RtlSimulator<hdt::FourState> rtlSim(d, rtl::KernelConfig{1000, kRatio, 1000});
  abstraction::TlmIpModel<hdt::FourState> tlmSim(d, abstraction::TlmModelConfig{kRatio, false});

  std::printf("transaction | RTL cycle | RTL time (ps) | hf ticks inside | y (RTL) | y (TLM)\n");
  std::printf("------------+-----------+---------------+-----------------+---------+--------\n");
  std::uint64_t prevTicks = 0;
  for (int c = 0; c < 6; ++c) {
    rtlSim.setInputByName("d", static_cast<std::uint64_t>(c));
    rtlSim.runCycles(1);
    tlmSim.setInputByName("d", static_cast<std::uint64_t>(c));
    tlmSim.scheduler();
    const std::uint64_t ticksNow = rtlSim.valueUintByName("ticks");
    std::printf("    #%d      |   %5d   | %13llu | %15llu | %7llu | %6llu\n", c + 1, c,
                static_cast<unsigned long long>(rtlSim.timePs()),
                static_cast<unsigned long long>(ticksNow - prevTicks),
                static_cast<unsigned long long>(rtlSim.valueUintByName("y")),
                static_cast<unsigned long long>(tlmSim.valueUintByName("y")));
    prevTicks = ticksNow;
  }

  std::printf("\nEach TLM primitive call = one scheduler() invocation = one RTL clock cycle\n");
  std::printf("(Fig. 7); the %d high-frequency periods are wrapped inside the transaction\n",
              kRatio);
  std::printf("by the inner loop of the dual-clock scheduler (Fig. 8b).\n");

  // Show the generated scheduler code skeleton (the Fig. 6b / 8b artifact).
  abstraction::EmitCppOptions eo;
  eo.hfRatio = kRatio;
  const std::string src = abstraction::emitCpp(d, eo);
  const auto pos = src.find("void scheduler()");
  const auto end = src.find("// TLM-2.0", pos);
  std::printf("\nGenerated scheduler (Fig. 6b / Fig. 8b structure):\n\n%s\n",
              src.substr(pos, end - pos).c_str());

  // Kernel-vs-model cost accounting — why the abstraction is faster.
  const auto& ks = rtlSim.stats();
  const auto& ts = tlmSim.stats();
  std::printf("RTL kernel:  %llu process runs, %llu delta cycles, %llu commits\n",
              static_cast<unsigned long long>(ks.processRuns),
              static_cast<unsigned long long>(ks.deltaCycles),
              static_cast<unsigned long long>(ks.commits));
  std::printf("TLM model:   %llu process runs, %llu levelized sweeps, %llu commits\n",
              static_cast<unsigned long long>(ts.processRuns),
              static_cast<unsigned long long>(ts.sweepPasses),
              static_cast<unsigned long long>(ts.commits));
  return 0;
}
