// Ablation D: PVT corners, aging and statistical analysis.
//
// The paper's insertion step relies on conservative binning across corners,
// OCV and aging (Section 4.2: "multiple process-temperature corners
// analysis, aging and local On-Chip Variation modeling"). This sweep shows
// how the worst-case margin stack moves slack and the sensor count on each
// case study — the design-margin story motivating the monitors in the first
// place (Section 2.2).
#include "bench/common.h"
#include "insertion/insertion.h"
#include "ir/elaborate.h"
#include "sta/sta.h"
#include "util/table.h"

int main() {
  using namespace xlv;
  bench::banner("Ablation D — corners, aging and statistical margins",
                "paper Sections 2.2 / 4.2");

  struct Scenario {
    const char* name;
    sta::Corner corner;
    double years;
    bool statistical;
  };
  const Scenario scenarios[] = {
      {"typical, fresh", sta::Corner::typical(), 0.0, false},
      {"fast corner", sta::Corner::fast(), 0.0, false},
      {"slow corner", sta::Corner::slow(), 0.0, false},
      {"slow + 10y aging", sta::Corner::slow(), 10.0, false},
      {"slow + 10y + 3-sigma", sta::Corner::slow(), 10.0, true},
  };

  util::Table t({"Digital IP", "Scenario", "Worst arrival (ps)", "Min slack (ps)",
                 "Critical paths", "Sensors"});
  for (const auto& cs : bench::allCases()) {
    ir::Design d = ir::elaborate(*cs.module);
    bool first = true;
    for (const auto& sc : scenarios) {
      sta::StaConfig cfg;
      cfg.clockPeriodPs = static_cast<double>(cs.periodPs);
      cfg.spreadFraction = cs.staSpreadFraction;
      cfg.corner = sc.corner;
      cfg.agingYears = sc.years;
      cfg.statistical = sc.statistical;
      auto report = sta::analyze(d, cfg);
      auto ins = insertion::insertSensors(*cs.module, report, insertion::InsertionConfig{});
      double worst = 0;
      for (const auto& p : report.paths) worst = std::max(worst, p.arrivalPs);
      t.addRow({first ? cs.name : "", sc.name, util::Table::fixed(worst, 0),
                util::Table::fixed(report.minSlackPs, 0),
                std::to_string(report.criticalCount), std::to_string(ins.sensors.size())});
      first = false;
    }
    t.addSeparator();
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nShape: every margin source (slow corner, aging drift, statistical sigma)\n"
      "erodes slack monotonically — the growing guardband that embedded monitors\n"
      "let designers reclaim (the paper's motivation, Section 2.2).\n");
  return 0;
}
