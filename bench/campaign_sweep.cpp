// Campaign sweep: corner-sweep axes with the shared golden-trace and
// stage-prefix caches, versus the same sweep with every point self-contained.
//
// Workload: a three-axis sweep (STA corner x threshold fraction x mutant-set
// variant) on the DSP Razor flow — the configuration-coverage direction of
// PAPERS.md layered on paper Section 7's mutation analysis. Points that
// agree on (corner, threshold) share one elaborate+insertion prefix, and
// points that additionally produce the same augmented design share one
// golden-trace recording; the cache-disabled mode re-derives everything per
// point.
//
// Self-check (CI runs this binary): the per-item reports must be
// bit-identical between cache-enabled and cache-disabled modes, across
// thread counts AND against the XLV_REFERENCE_SIM=1 full-replay path; any
// divergence exits nonzero. So does a warm leg whose cache ledgers report
// zero hits, or a fast leg whose cyclesSkipped ledger is zero — a silently
// disabled cache or fast path must fail the bench, not ride a
// vacuously-identical comparison to a green exit.
#include <stdlib.h>

#include <cstdio>

#include "analysis/golden_cache.h"
#include "analysis/mutant_cache.h"
#include "bench/common.h"
#include "campaign/sweep.h"
#include "util/table.h"

namespace {

using namespace xlv;

campaign::SweepSpec makeSweep(int threads, bool shareCaches) {
  campaign::SweepSpec sweep;
  sweep.name = shareCaches ? "dsp-3axis-cached" : "dsp-3axis-cold";
  sweep.cases = {ips::buildDspCase()};
  sweep.base.sensorKind = insertion::SensorKind::Razor;
  sweep.base.testbenchCycles = bench::scaled(400);
  sweep.base.measureRtl = false;
  sweep.base.measureOptimized = false;
  // Disable the DSP's spread-relative binning so the corner and threshold
  // axes actually move the critical set (spread binning is scale-invariant:
  // a multiplicative corner derate would leave insertion unchanged and every
  // point would share one design).
  sweep.base.staSpreadFraction = -1.0;
  // PVT corners plus a low-voltage V-f operating point (Table 1's axis).
  sweep.axes.corners = sta::standardCorners();
  sweep.axes.corners.push_back(sta::Corner::atOperatingPoint(0.9));
  sweep.axes.thresholdFractions = {0.25, 0.35};
  sweep.axes.mutantSets = {core::MutantSetVariant::Full, core::MutantSetVariant::MinDelay,
                           core::MutantSetVariant::MaxDelay};
  sweep.executor = campaign::ExecutorConfig{threads, 0};
  sweep.sharePrefixes = shareCaches;
  sweep.shareGoldenTraces = shareCaches;
  sweep.shareMutantResults = shareCaches;
  return sweep;
}

void clearCaches() { core::clearProcessCaches(); }

}  // namespace

int main() {
  bench::banner("Campaign sweep — corner axes with shared golden-trace cache",
                "the configuration-coverage extension of paper Sections 4/7");

  const std::size_t points = campaign::sweepCardinality(makeSweep(1, true));
  std::printf("DSP Razor, 3 axes: %zu corners x 2 thresholds x 3 mutant sets = %zu points\n\n",
              sta::standardCorners().size() + 1, points);

  bool ok = true;

  // --- full-replay reference (XLV_REFERENCE_SIM=1, no fast path) ------------
  ::setenv("XLV_REFERENCE_SIM", "1", 1);
  clearCaches();
  const campaign::CampaignResult reference = campaign::runSweep(makeSweep(1, false));
  ::unsetenv("XLV_REFERENCE_SIM");
  ok = ok && reference.ok();
  if (reference.cyclesSkipped != 0) {
    std::fprintf(stderr, "FAIL: reference leg skipped cycles (env toggle broken?)\n");
    ok = false;
  }

  // --- cache-disabled cold leg (every point self-contained, fast path) ------
  clearCaches();
  const campaign::CampaignResult cold = campaign::runSweep(makeSweep(1, false));
  ok = ok && cold.ok();
  if (!reference.sameResults(cold)) {
    std::fprintf(stderr,
                 "FAIL: divergence-driven fast path diverged from the full-replay "
                 "reference\n");
    ok = false;
  }
  if (cold.cyclesSkipped == 0) {
    std::fprintf(stderr,
                 "FAIL: fast path skipped zero cycles — checkpoint fast-forward/early "
                 "exit silently disabled?\n");
    ok = false;
  }

  util::Table t({"Mode", "Threads", "Wall (s)", "Sim work (s)", "Golden (s)", "Golden hits",
                 "Prefix hits", "Mutant hits", "Identical"});
  t.addRow({"cold", "1", util::Table::fixed(cold.wallSeconds, 3),
            util::Table::fixed(cold.simSeconds, 3), util::Table::fixed(cold.goldenSeconds, 3),
            "0", "0", "0", "ref"});

  // --- cache-enabled at increasing thread counts ----------------------------
  double cachedSerialWall = 0.0;
  double cachedGoldenSeconds = 0.0;
  for (int threads : {1, 2, 8}) {
    clearCaches();
    const campaign::CampaignResult r = campaign::runSweep(makeSweep(threads, true));
    // CampaignResult::sameResults — the same comparator the tests use.
    const bool identical = cold.sameResults(r);
    // Warm-leg hit floor: this sweep shares prefixes across mutant-set
    // points, golden traces across identical augmented designs and mutant
    // results across full ⊃ min/max — ledgers reporting zero reuse mean the
    // cache is silently off, which must fail the self-check even though the
    // reports still compare identical.
    const bool hitsOk =
        r.prefixCacheHits > 0 && r.goldenCacheHits > 0 && r.mutantCacheHits > 0;
    if (!hitsOk) {
      std::fprintf(stderr,
                   "FAIL: cached leg (threads=%d) reports zero cache hits "
                   "(prefix %d, golden %d, mutant %d) — cache silently disabled?\n",
                   threads, r.prefixCacheHits, r.goldenCacheHits, r.mutantCacheHits);
    }
    ok = ok && r.ok() && identical && hitsOk;
    if (threads == 1) {
      cachedSerialWall = r.wallSeconds;
      cachedGoldenSeconds = r.goldenSeconds;
    }
    const auto gstats = analysis::goldenTraceCache().stats();
    t.addRow({"cached", std::to_string(threads), util::Table::fixed(r.wallSeconds, 3),
              util::Table::fixed(r.simSeconds, 3), util::Table::fixed(r.goldenSeconds, 3),
              std::to_string(r.goldenCacheHits) + "/" + std::to_string(gstats.hits + gstats.misses),
              std::to_string(r.prefixCacheHits), std::to_string(r.mutantCacheHits),
              identical ? "yes" : "NO — BUG"});
  }
  std::fputs(t.render().c_str(), stdout);

  const double speedup = cachedSerialWall > 0.0 ? cold.wallSeconds / cachedSerialWall : 0.0;
  const double cycleRatio =
      cold.cyclesSimulated > 0
          ? static_cast<double>(reference.cyclesSimulated) /
                static_cast<double>(cold.cyclesSimulated)
          : 0.0;
  std::printf(
      "\nDivergence-driven simulation: %llu reference mutant-cycles -> %llu fast\n"
      "(%llu skipped, %.2fx fewer simulated; DSP Razor mutants stay live until the\n"
      "correction verdict resolves, so this razor-only sweep skips mostly prefixes).\n",
      static_cast<unsigned long long>(reference.cyclesSimulated),
      static_cast<unsigned long long>(cold.cyclesSimulated),
      static_cast<unsigned long long>(cold.cyclesSkipped), cycleRatio);
  std::printf(
      "\nCache effect (serial, same thread count): %.3fs -> %.3fs wall (%.2fx);\n"
      "golden-trace component: %.3fs -> %.3fs.\n"
      "Expected shape: the cached sweep elaborates once per (corner, threshold)\n"
      "pair and records one golden trace per distinct augmented design, so the\n"
      "golden/prefix components collapse while the report stays bit-identical;\n"
      "total wall shrinks by the shared fraction (per-mutant simulation is\n"
      "per-point work the golden cache deliberately does not touch). Adding\n"
      "threads shrinks wall time on top (items are independent; caches serve\n"
      "concurrent tasks via per-key build-once).\n",
      cold.wallSeconds, cachedSerialWall, speedup, cold.goldenSeconds, cachedGoldenSeconds);

  bench::writeBenchJson(
      "campaign_sweep",
      {{"points", static_cast<double>(points)},
       {"wall_seconds_cold", cold.wallSeconds},
       {"wall_seconds_cached_serial", cachedSerialWall},
       {"golden_seconds_cold", cold.goldenSeconds},
       {"golden_seconds_cached", cachedGoldenSeconds},
       {"cycles_simulated_reference", static_cast<double>(reference.cyclesSimulated)},
       {"cycles_simulated_fast", static_cast<double>(cold.cyclesSimulated)},
       {"cycles_skipped_fast", static_cast<double>(cold.cyclesSkipped)},
       {"cycle_reduction_factor", cycleRatio},
       {"self_check_ok", ok ? 1.0 : 0.0}});

  if (!ok) {
    std::fprintf(stderr, "\nFAIL: sweep reports diverged (cache or thread-count dependent)\n");
    return 1;
  }
  if (speedup <= 1.0) {
    std::printf("\nnote: no wall-time reduction measured on this host/scale "
                "(tiny workloads can hide the saving); reports were identical.\n");
  }
  std::printf("\nself-check: OK\n");
  return 0;
}
