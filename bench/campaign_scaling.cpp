// Campaign scaling: wall-clock behavior of the parallel mutation-campaign
// engine versus the serial per-mutant flow.
//
// Workload: the Plasma Counter campaign (the paper's largest mutant set —
// three DeltaDelay mutants per inserted sensor). The flow prefix
// (elaborate -> insertion -> abstraction -> injection) runs ONCE through the
// composable stages; only the per-mutant analysis campaign is repeated at
// increasing thread counts. The report must be identical at every thread
// count (excluding the timing fields) — verified here on every row.
//
// A second section scales the full-matrix campaign (3 IPs x 2 sensor kinds)
// across flow-level workers.
#include <cstring>
#include <thread>

#include "bench/common.h"
#include "campaign/campaign.h"
#include "core/flow.h"
#include "util/table.h"

namespace {

/// Everything except timing fields must match across thread counts.
bool sameResults(const xlv::analysis::AnalysisReport& a,
                 const xlv::analysis::AnalysisReport& b) {
  return a.sameResults(b);
}

}  // namespace

int main() {
  using namespace xlv;
  bench::banner("Campaign scaling — parallel mutation-campaign engine",
                "the throughput extension of paper Section 7");

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("hardware_concurrency: %d\n\n", hw);

  // --- per-mutant scaling on the Plasma Counter campaign --------------------
  ips::CaseStudy cs = ips::buildPlasmaCase();
  core::FlowOptions opts;
  opts.sensorKind = insertion::SensorKind::Counter;
  opts.testbenchCycles = bench::scaled(cs.testbench.cycles);

  core::FlowReport flow;
  core::stageElaborate(cs, opts, flow);
  core::stageInsertion(cs, opts, flow);
  core::stageAbstraction(flow);
  core::stageInjection(cs, opts, flow);
  std::printf("Plasma Counter campaign: %d sensors, %zu mutants, %llu cycles/run\n\n",
              static_cast<int>(flow.sensors.size()), flow.mutantSpecs.size(),
              static_cast<unsigned long long>(core::flowCycles(cs, opts)));

  analysis::Testbench tb = cs.testbench;
  tb.cycles = core::flowCycles(cs, opts);

  auto analyzeAt = [&](int threads) {
    analysis::AnalysisConfig acfg;
    acfg.hfRatio = flow.hfRatio;
    acfg.sensorKind = opts.sensorKind;
    acfg.threads = threads;
    return analysis::analyzeMutations<hdt::FourState>(flow.augmentedDesign, flow.injected,
                                                      flow.sensors, tb, acfg);
  };

  const analysis::AnalysisReport serial = analyzeAt(1);
  bool allIdentical = true;

  util::Table t({"Threads", "Wall (s)", "Sim work (s)", "Speedup vs serial", "Identical"});
  t.addRow({"1", util::Table::fixed(serial.wallSeconds, 3),
            util::Table::fixed(serial.simSeconds, 3), "1.00x", "yes"});
  for (int threads : {2, 4, 8}) {
    const analysis::AnalysisReport r = analyzeAt(threads);
    const double speedup = r.wallSeconds > 0.0 ? serial.wallSeconds / r.wallSeconds : 0.0;
    const bool identical = sameResults(serial, r);
    allIdentical = allIdentical && identical;
    t.addRow({std::to_string(threads), util::Table::fixed(r.wallSeconds, 3),
              util::Table::fixed(r.simSeconds, 3), util::Table::fixed(speedup, 2) + "x",
              identical ? "yes" : "NO — BUG"});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nExpected shape: wall time shrinks toward sim/threads while sim work stays\n"
      "flat (the campaign adds no redundant work: golden trace recorded once,\n"
      "injected design compiled once, sessions cloned per task). Speedup tracks\n"
      "min(threads, cores); on a single-core host every row stays near 1x. Sim\n"
      "work is summed per-task *wall* time, so when threads exceed cores it\n"
      "inflates with timeslice waits — that is oversubscription, not redundant\n"
      "work.\n");

  // --- flow-level scaling: the full experiment matrix ------------------------
  std::printf("\nFull-matrix campaign (3 IPs x 2 sensor kinds, flow-level workers):\n\n");
  core::FlowOptions base;
  base.timingRepetitions = 1;
  base.measureRtl = false;  // dominate the campaign with TLM work, as in production

  bool allItemsOk = true;
  util::Table m({"Flow workers", "Wall (s)", "Sim work (s)", "Items ok"});
  for (int threads : {1, 2, 4}) {
    std::vector<ips::CaseStudy> cases = bench::allCases();
    for (auto& c : cases) c.testbench.cycles = bench::scaled(c.testbench.cycles) / 2 + 1;
    campaign::CampaignSpec spec =
        campaign::fullMatrixCampaign(cases, base, campaign::ExecutorConfig{threads, 0});
    const campaign::CampaignResult r = campaign::runCampaign(spec);
    int ok = 0;
    for (const auto& it : r.items) ok += it.error.empty() ? 1 : 0;
    allItemsOk = allItemsOk && ok == static_cast<int>(r.items.size());
    m.addRow({std::to_string(threads), util::Table::fixed(r.wallSeconds, 3),
              util::Table::fixed(r.simSeconds, 3),
              std::to_string(ok) + "/" + std::to_string(static_cast<int>(r.items.size()))});
  }
  std::fputs(m.render().c_str(), stdout);

  // Nonzero exit on a determinism or item failure so the CI smoke step
  // actually gates on it.
  if (!allIdentical || !allItemsOk) {
    std::fprintf(stderr, "\nFAILURE: %s\n",
                 !allIdentical ? "parallel report diverged from serial" : "campaign item failed");
    return 1;
  }
  return 0;
}
