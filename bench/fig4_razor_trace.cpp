// Figure 4b: timing diagram of the modified Razor sensor mechanism —
// cycle 1 correct timing, cycle 2 timing-failure detection, cycle 3
// detection + correction. Reproduced as a cycle-by-cycle trace of the real
// Razor model under an injected transport delay.
#include <cstdio>

#include "bench/common.h"
#include "insertion/insertion.h"
#include "ir/builder.h"
#include "ir/elaborate.h"
#include "rtl/kernel.h"
#include "sta/sta.h"

int main() {
  using namespace xlv;
  using namespace xlv::ir;
  bench::banner("Figure 4b — Razor sensor timing diagram", "paper Fig. 4b");

  ModuleBuilder mb("dut");
  auto clk = mb.clock("clk");
  auto din = mb.in("din", 8);
  auto dout = mb.out("dout", 8);
  auto r = mb.signal("r", 8);
  mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, din); });
  mb.comb("drive", [&](ProcBuilder& p) { p.assign(dout, r); });
  auto ip = mb.finish();

  sta::StaConfig staCfg;
  staCfg.clockPeriodPs = 1000;
  staCfg.thresholdFraction = 1.0;
  auto report = sta::analyze(elaborate(*ip), staCfg);
  auto ins = insertion::insertSensors(*ip, report, insertion::InsertionConfig{});
  Design d = elaborate(*ins.augmented);

  rtl::RtlSimulator<hdt::FourState> sim(d, rtl::KernelConfig{1000, 0, 1000});
  // Cycle 0-1: correct timing. From cycle 2 on: the path is late by 300 ps
  // (inside the (0, T/2] window): detection; with R=1 the shadow value is
  // recovered onto Q one cycle later.
  sim.setStimulus([&](std::uint64_t c, rtl::RtlSimulator<hdt::FourState>& s) {
    s.setInputByName("din", 0x10 + c);
    s.setInputByName("recovery_en", 1);
    if (c == 2) s.injectDelay(d.findSymbol("r"), 300);
  });

  std::printf("cycle | OP(din) | main FF | shadow | E | Q (recovered) | phase\n");
  std::printf("------+---------+---------+--------+---+---------------+---------------------------\n");
  for (int c = 0; c < 6; ++c) {
    sim.runCycles(1);
    const char* phase = c < 2   ? "correct timing"
                        : c == 2 ? "timing failure DETECTED"
                                 : "detection + correction";
    std::printf("%5d |    0x%02llX |    0x%02llX |   0x%02llX | %llu |          0x%02llX | %s\n", c,
                static_cast<unsigned long long>(sim.valueUintByName("din")),
                static_cast<unsigned long long>(sim.valueUintByName("razor0.main_ff")),
                static_cast<unsigned long long>(sim.valueUintByName("razor0.shadow")),
                static_cast<unsigned long long>(sim.valueUintByName("rz_e_0")),
                static_cast<unsigned long long>(sim.valueUintByName("rz_q_0")), phase);
  }
  std::printf(
      "\nAs in Fig. 4b: while timing is met, main FF == shadow and E=0; once the\n"
      "path is late, the main FF holds the stale OP while the shadow latch (half-\n"
      "period delayed clock) catches the new one -> E=1, and Q presents the\n"
      "recovered value one cycle later (pipeline-replay recovery).\n");
  return 0;
}
