// Figure 5b: timing diagram of the Counter-based sensor working mechanism —
// the observability window opens at the clock edge, the HF counter
// enumerates periods, the capture register records the last CPS transition,
// and OUT_OK reports the threshold comparison at the window close.
#include <cstdio>

#include "bench/common.h"
#include "insertion/insertion.h"
#include "ir/builder.h"
#include "ir/elaborate.h"
#include "rtl/kernel.h"
#include "sta/sta.h"

int main() {
  using namespace xlv;
  using namespace xlv::ir;
  bench::banner("Figure 5b — Counter-based sensor timing diagram", "paper Fig. 5b");

  constexpr std::uint64_t kPeriod = 1200;
  constexpr int kRatio = 10;
  constexpr std::uint64_t kTick = (kPeriod / 2) / (kRatio + 1);

  ModuleBuilder mb("dut");
  auto clk = mb.clock("clk");
  auto din = mb.in("din", 8);
  auto dout = mb.out("dout", 8);
  auto r = mb.signal("r", 8);
  mb.onRising("ff", clk, [&](ProcBuilder& p) { p.assign(r, Ex(din) ^ Ex(r)); });
  mb.comb("drive", [&](ProcBuilder& p) { p.assign(dout, r); });
  auto ip = mb.finish();

  sta::StaConfig staCfg;
  staCfg.clockPeriodPs = kPeriod;
  staCfg.thresholdFraction = 1.0;
  auto report = sta::analyze(elaborate(*ip), staCfg);
  insertion::InsertionConfig icfg;
  icfg.kind = insertion::SensorKind::Counter;
  auto ins = insertion::insertSensors(*ip, report, icfg);
  Design d = elaborate(*ins.augmented);

  std::printf("MAIN_CLK period %llu ps, HF resolution %llu ps (ratio %d), LUT threshold 8\n\n",
              static_cast<unsigned long long>(kPeriod),
              static_cast<unsigned long long>(kTick), kRatio);
  std::printf("delay | MEAS_VAL | OUT_OK | interpretation\n");
  std::printf("------+----------+--------+--------------------------------\n");
  for (int j = 0; j <= kRatio; ++j) {
    rtl::RtlSimulator<hdt::FourState> sim(d, rtl::KernelConfig{kPeriod, kRatio, 1000});
    sim.setStimulus([&](std::uint64_t, rtl::RtlSimulator<hdt::FourState>& s) {
      s.setInputByName("din", 1);
    });
    if (j > 0) sim.injectDelay(d.findSymbol("r"), static_cast<std::uint64_t>(j) * kTick);
    sim.runCycles(6);
    const auto mv = sim.valueUintByName("meas_val");
    const auto ok = sim.valueUintByName("metric_ok");
    std::printf("%2d HF | %8llu |      %llu | %s\n", j, static_cast<unsigned long long>(mv),
                static_cast<unsigned long long>(ok),
                j == 0        ? "on-time commit, nothing captured"
                : mv <= 8     ? "measured, tolerable (<= LUT_OUT)"
                              : "measured, constraint VIOLATED");
  }
  std::printf(
      "\nAs in Fig. 5b: MEAS_VAL enumerates the HF periods elapsed until the last\n"
      "transition of the monitored path signal within the observability window;\n"
      "OUT_OK compares it against the design-time LUT threshold.\n");
  return 0;
}
