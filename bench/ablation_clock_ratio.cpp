// Ablation B: high-frequency clock ratio sweep. The Counter sensor's
// resolution is one HF period (Section 4.1.2); raising the ratio sharpens
// the measurement but multiplies the scheduler work wrapped inside each TLM
// transaction (Section 5.2.2). This sweep quantifies the accuracy/speed
// trade-off the sensor-aware abstraction balances.
#include "bench/common.h"
#include "core/flow.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace xlv;
  bench::banner("Ablation B — HF clock ratio: resolution vs simulation cost",
                "paper Sections 4.1.2 / 5.2.2");

  // Filter case: mid-size, single-clock IP.
  ips::CaseStudy cs = ips::buildFilterCase();
  const std::uint64_t cycles = bench::scaled(cs.testbench.cycles * 2);

  util::Table t({"HF ratio", "Resolution (ps)", "TLM time (s)", "Slowdown vs ratio 2",
                 "Transactions/s"});
  double base = 0.0;
  for (int ratio : {2, 5, 10, 20, 40}) {
    cs.hfRatio = ratio;
    core::FlowOptions opts;
    opts.sensorKind = insertion::SensorKind::Counter;
    opts.testbenchCycles = cycles;
    opts.timingRepetitions = 3;
    opts.measureRtl = false;
    opts.measureOptimized = false;
    opts.runMutationAnalysis = false;
    const core::FlowReport r = core::runFlow(cs, opts);
    if (base == 0.0) base = r.timings.tlmSeconds;
    const std::uint64_t resolution = (cs.periodPs / 2) / static_cast<std::uint64_t>(ratio + 1);
    t.addRow({std::to_string(ratio), std::to_string(resolution),
              util::Table::fixed(r.timings.tlmSeconds, 4),
              util::Table::fixed(r.timings.tlmSeconds / base, 2) + "x",
              std::to_string(static_cast<long>(cycles / std::max(1e-9, r.timings.tlmSeconds)))});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nShape: resolution improves ~1/ratio while simulation cost grows with the\n"
              "number of HF periods wrapped into each transaction — the trade-off the\n"
              "paper's dual-clock scheduler (Fig. 8b) is designed around.\n");
  return 0;
}
