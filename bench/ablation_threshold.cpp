// Ablation A: slack-threshold sweep. The paper (Section 4.2) bins paths
// critical by a slack threshold derived from design margins; this sweep
// shows how the threshold trades sensor count (area overhead) against
// coverage on each case study.
#include "bench/common.h"
#include "insertion/insertion.h"
#include "ir/elaborate.h"
#include "sta/sta.h"
#include "util/table.h"

int main() {
  using namespace xlv;
  bench::banner("Ablation A — STA slack-threshold sweep", "paper Section 4.2 design margins");

  util::Table t({"Digital IP", "Spread fraction", "Critical paths", "Sensors (Razor)",
                 "Sensor area (gates)", "Area overhead (%)"});
  for (const auto& cs : bench::allCases()) {
    ir::Design d = ir::elaborate(*cs.module);
    const double ipGates = sta::estimateAreaGates(d);
    bool first = true;
    for (double spread : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      sta::StaConfig staCfg;
      staCfg.clockPeriodPs = static_cast<double>(cs.periodPs);
      staCfg.spreadFraction = spread;
      auto report = sta::analyze(d, staCfg);
      auto ins = insertion::insertSensors(*cs.module, report, insertion::InsertionConfig{});
      t.addRow({first ? cs.name : "", util::Table::fixed(spread, 1),
                std::to_string(report.criticalCount), std::to_string(ins.sensors.size()),
                std::to_string(static_cast<long>(ins.sensorAreaGates)),
                util::Table::fixed(100.0 * ins.sensorAreaGates / ipGates, 1)});
      first = false;
    }
    t.addSeparator();
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nShape: sensor count and area overhead grow monotonically with the margin\n"
              "budget; at spread 0 only the single worst path is monitored.\n");
  return 0;
}
