// Table 4: characteristics and simulation performance of the generated
// optimized TLM code (HDTLib 2-state data types).
// Columns: Optimized TLM time (s), speedup w.r.t. TLM, speedup w.r.t. RTL.
#include "bench/common.h"
#include "core/flow.h"
#include "util/table.h"

int main() {
  using namespace xlv;
  bench::banner("Table 4 — data-type-optimized TLM performance", "paper Table 4");

  util::Table t({"Digital IP", "Delay sensors", "Optimized TLM time (s)", "Speedup w.r.t. TLM",
                 "Speedup w.r.t. RTL"});
  double vsTlmSum = 0.0, vsRtlSum = 0.0;
  int rows = 0;
  for (const auto& cs : bench::allCases()) {
    bool first = true;
    for (auto kind : {insertion::SensorKind::Razor, insertion::SensorKind::Counter}) {
      core::FlowOptions opts;
      opts.sensorKind = kind;
      opts.testbenchCycles = bench::scaled(cs.testbench.cycles * 12);
      opts.timingRepetitions = 5;
      opts.measureRtl = true;
      opts.runMutationAnalysis = false;
      const core::FlowReport r = core::runFlow(cs, opts);
      const double vsTlm =
          r.timings.tlmOptSeconds > 0.0 ? r.timings.tlmSeconds / r.timings.tlmOptSeconds : 0.0;
      const double vsRtl =
          r.timings.tlmOptSeconds > 0.0 ? r.timings.rtlSeconds / r.timings.tlmOptSeconds : 0.0;
      vsTlmSum += vsTlm;
      vsRtlSum += vsRtl;
      ++rows;
      t.addRow({first ? cs.name : "",
                kind == insertion::SensorKind::Razor ? "Razor" : "Counter",
                util::Table::fixed(r.timings.tlmOptSeconds, 3),
                util::Table::fixed(vsTlm, 2) + "x", util::Table::fixed(vsRtl, 2) + "x"});
      first = false;
    }
    t.addSeparator();
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nAverages: %.2fx vs plain TLM, %.2fx vs RTL"
              "\n(paper: 1.34x vs TLM and 4.03x vs RTL on average — the shape to match is"
              "\n 2-state consistently faster than 4-state, compounding the TLM speedup).\n",
              vsTlmSum / rows, vsRtlSum / rows);
  return 0;
}
