// Ablation C (google-benchmark): HDTLib data-type microbenchmarks behind
// Table 4 — 4-state two-plane vectors vs 2-state vectors vs a naive
// per-bit reference, across widths.
#include <benchmark/benchmark.h>

#include "hdt/bit_vector.h"
#include "hdt/logic_vector.h"
#include "util/prng.h"

namespace {

using namespace xlv::hdt;

LogicVector randomLv(xlv::util::Prng& rng, int width) {
  LogicVector v(width);
  for (int w = 0; w < v.numWords(); ++w) v.setWord(w, {rng.next(), 0});
  v.maskTop();
  return v;
}

BitVector randomBv(xlv::util::Prng& rng, int width) {
  BitVector v(width);
  for (int w = 0; w < v.numWords(); ++w) v.setWordVal(w, rng.next());
  v.maskTop();
  return v;
}

/// Reference implementation: per-bit operations through the scalar tables
/// (what a lookup-table-per-bit library would do — the baseline HDTLib's
/// word-parallel Karnaugh forms replace).
LogicVector naiveAnd(const LogicVector& a, const LogicVector& b) {
  LogicVector r(a.width());
  for (int i = 0; i < a.width(); ++i) r.setBit(i, a.bit(i) & b.bit(i));
  return r;
}

void BM_FourState_And(benchmark::State& state) {
  xlv::util::Prng rng(1);
  const int width = static_cast<int>(state.range(0));
  const LogicVector a = randomLv(rng, width);
  const LogicVector b = randomLv(rng, width);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec_and(a, b));
  }
}
BENCHMARK(BM_FourState_And)->Arg(8)->Arg(32)->Arg(64)->Arg(256);

void BM_TwoState_And(benchmark::State& state) {
  xlv::util::Prng rng(2);
  const int width = static_cast<int>(state.range(0));
  const BitVector a = randomBv(rng, width);
  const BitVector b = randomBv(rng, width);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec_and(a, b));
  }
}
BENCHMARK(BM_TwoState_And)->Arg(8)->Arg(32)->Arg(64)->Arg(256);

void BM_NaivePerBit_And(benchmark::State& state) {
  xlv::util::Prng rng(3);
  const int width = static_cast<int>(state.range(0));
  const LogicVector a = randomLv(rng, width);
  const LogicVector b = randomLv(rng, width);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naiveAnd(a, b));
  }
}
BENCHMARK(BM_NaivePerBit_And)->Arg(8)->Arg(32)->Arg(64)->Arg(256);

void BM_FourState_Add(benchmark::State& state) {
  xlv::util::Prng rng(4);
  const int width = static_cast<int>(state.range(0));
  const LogicVector a = randomLv(rng, width);
  const LogicVector b = randomLv(rng, width);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec_add(a, b));
  }
}
BENCHMARK(BM_FourState_Add)->Arg(8)->Arg(32)->Arg(64)->Arg(256);

void BM_TwoState_Add(benchmark::State& state) {
  xlv::util::Prng rng(5);
  const int width = static_cast<int>(state.range(0));
  const BitVector a = randomBv(rng, width);
  const BitVector b = randomBv(rng, width);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec_add(a, b));
  }
}
BENCHMARK(BM_TwoState_Add)->Arg(8)->Arg(32)->Arg(64)->Arg(256);

void BM_FourState_Compare(benchmark::State& state) {
  xlv::util::Prng rng(6);
  const int width = static_cast<int>(state.range(0));
  const LogicVector a = randomLv(rng, width);
  const LogicVector b = randomLv(rng, width);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec_ltu(a, b));
  }
}
BENCHMARK(BM_FourState_Compare)->Arg(32)->Arg(256);

void BM_TwoState_Compare(benchmark::State& state) {
  xlv::util::Prng rng(7);
  const int width = static_cast<int>(state.range(0));
  const BitVector a = randomBv(rng, width);
  const BitVector b = randomBv(rng, width);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec_ltu(a, b));
  }
}
BENCHMARK(BM_TwoState_Compare)->Arg(32)->Arg(256);

void BM_To2StateScrub(benchmark::State& state) {
  xlv::util::Prng rng(8);
  const LogicVector a = randomLv(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec_to2state(a));
  }
}
BENCHMARK(BM_To2StateScrub)->Arg(32)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
