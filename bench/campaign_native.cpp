// Native-codegen simulation backend vs the interpreter (ISSUE 6 tentpole).
//
// Workload: the builtin "single" campaign preset with its cycle budget
// scaled up, run once per engine under XLV_REFERENCE_SIM=1. Full replay
// makes the run simulation-dominated and gives both engines the exact same
// deterministic cycle count, so the wall-time ratio is an honest engine
// comparison rather than a measure of how much the divergence fast path
// happened to skip.
//
// The native compile is warmed OUTSIDE the timed region (compile cost is
// amortised across a campaign and cached in the artifact store; the paper's
// claim is about simulation throughput). Between legs the result/trace
// caches are cleared but the native .so cache is deliberately kept.
//
// Self-check: native results bit-identical to the interpreter's AND >= 2x
// wall-time speedup (the ISSUE 6 acceptance bar). Without a system C++
// compiler the bench prints a visible notice and reports
// native_available=0 — skipping is a recorded state, not a silent pass.
#include <stdlib.h>

#include <chrono>
#include <cstdio>

#include "abstraction/native_backend.h"
#include "analysis/checkpoint_cache.h"
#include "analysis/golden_cache.h"
#include "analysis/mutant_cache.h"
#include "bench/common.h"
#include "campaign/shard.h"
#include "core/flow.h"
#include "util/table.h"

namespace {

using namespace xlv;
using Clock = std::chrono::steady_clock;

/// Clear every result/trace cache WITHOUT dropping compiled native
/// libraries: the timed native leg must re-simulate from scratch but not
/// re-compile (core::clearProcessCaches would also flush the .so cache).
void clearResultCaches() {
  core::flowPrefixCache().clear();
  analysis::goldenTraceCache().clear();
  analysis::mutantResultCache().clear();
  analysis::checkpointCache().clear();
}

campaign::CampaignSpec workload(analysis::SimBackend backend) {
  campaign::CampaignSpec spec = campaign::builtinCampaignSpec("single");
  for (auto& item : spec.items) {
    item.options.testbenchCycles = bench::scaled(2000);
    item.options.backend = backend;
  }
  return spec;
}

double seconds(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  bench::banner("Native-codegen backend vs interpreter — bit-identical, faster",
                "the simulation-throughput side of paper Section 7's campaigns");

  if (!abstraction::nativeToolchainAvailable()) {
    std::printf(
        "NOTICE: no system C++ compiler found (tried XLV_CC, c++, g++, clang++)\n"
        "        — native backend unavailable, recording native_available=0 and\n"
        "        skipping the engine comparison. The interpreter path is still\n"
        "        covered by every other bench and the test suite.\n");
    bench::writeBenchJson("campaign",
                          {{"native_available", 0.0}, {"self_check_ok", 1.0}});
    return 0;
  }
  std::printf("native toolchain: %s\n\n",
              abstraction::nativeToolchainDescription().c_str());

  // Full replay in both legs: same deterministic cycle count per engine.
  ::setenv("XLV_REFERENCE_SIM", "1", 1);

  // Warm-up: compiles (and memoises) the native library for this design,
  // and touches every code path once so neither timed leg pays first-run
  // costs the other doesn't.
  clearResultCaches();
  const campaign::CampaignResult warm = campaign::runCampaign(workload(analysis::SimBackend::Native));
  bool ok = warm.ok();
  if (warm.nativeCompiles + warm.nativeCacheHits == 0) {
    std::fprintf(stderr, "FAIL: warm-up leg did no native work (compiles 0, hits 0)\n");
    ok = false;
  }

  // Timed leg 1: interpreter.
  clearResultCaches();
  const Clock::time_point i0 = Clock::now();
  const campaign::CampaignResult interp =
      campaign::runCampaign(workload(analysis::SimBackend::Interpreter));
  const double interpSeconds = seconds(i0, Clock::now());

  // Timed leg 2: native, .so served from the in-process cache.
  clearResultCaches();
  const Clock::time_point n0 = Clock::now();
  const campaign::CampaignResult native =
      campaign::runCampaign(workload(analysis::SimBackend::Native));
  const double nativeSeconds = seconds(n0, Clock::now());
  ::unsetenv("XLV_REFERENCE_SIM");

  const bool identical = interp.sameResults(native);
  const double speedup = nativeSeconds > 0.0 ? interpSeconds / nativeSeconds : 0.0;
  const std::size_t mutants =
      interp.items.empty() ? 0 : interp.items[0].report.analysis.results.size();

  util::Table t({"Engine", "Mutants", "Cycles sim", "Wall (s)", "Speedup", "Identical"});
  t.addRow({"interpreter", std::to_string(mutants),
            std::to_string(interp.cyclesSimulated), util::Table::fixed(interpSeconds, 3),
            "1.00x", "ref"});
  t.addRow({"native", std::to_string(mutants), std::to_string(native.cyclesSimulated),
            util::Table::fixed(nativeSeconds, 3), util::Table::fixed(speedup, 2) + "x",
            identical ? "yes" : "NO — BUG"});
  std::fputs(t.render().c_str(), stdout);

  if (!identical) {
    std::fprintf(stderr, "FAIL: native backend diverged from the interpreter\n");
  }
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: native speedup %.2fx below the 2x acceptance bar "
                 "(interp %.3fs, native %.3fs)\n",
                 speedup, interpSeconds, nativeSeconds);
  }
  if (native.nativeCompiles + native.nativeCacheHits == 0) {
    std::fprintf(stderr, "FAIL: timed native leg reports no native engine use\n");
  }
  ok = ok && interp.ok() && native.ok() && identical && speedup >= 2.0 &&
       native.nativeCompiles + native.nativeCacheHits > 0;

  std::printf(
      "\nExpected shape: identical \"yes\" with speedup >= 2x — the emitted\n"
      "TU flattens the scheduler sweep into straight-line compiled code, so\n"
      "per-cycle cost drops while the cycle counts (and every per-mutant\n"
      "verdict) stay bit-identical to the interpreter.\n");

  bench::writeBenchJson(
      "campaign",
      {{"native_available", 1.0},
       {"wall_seconds_interp_single", interpSeconds},
       {"wall_seconds_native_single", nativeSeconds},
       {"native_speedup_single", speedup},
       {"cycles_simulated_single", static_cast<double>(interp.cyclesSimulated)},
       {"native_compiles", static_cast<double>(warm.nativeCompiles)},
       {"native_cache_hits",
        static_cast<double>(warm.nativeCacheHits + native.nativeCacheHits)},
       {"self_check_ok", ok ? 1.0 : 0.0}});

  if (!ok) {
    std::fprintf(stderr, "\nFAIL: native-vs-interpreter acceptance check failed\n");
    return 1;
  }
  std::printf("\nself-check: OK\n");
  return 0;
}
