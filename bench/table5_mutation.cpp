// Table 5: characteristics and results of the application of mutation
// analysis. Columns: Injected TLM (loc), time (s), speedup w.r.t. RTL,
// Mutants (#), killed (%), corrected (%), errors risen (%).
#include "bench/common.h"
#include "core/flow.h"
#include "util/table.h"

int main() {
  using namespace xlv;
  bench::banner("Table 5 — mutation analysis of the augmented IPs", "paper Table 5");

  util::Table t({"Digital IP", "Delay sensors", "Injected TLM (loc)", "Time (s)",
                 "Speedup w.r.t. RTL", "Mutants (#)", "killed (%)", "corrected (%)",
                 "risen (%)", "Analysis sim (s)", "Analysis wall (s)"});
  for (const auto& cs : bench::allCases()) {
    bool first = true;
    for (auto kind : {insertion::SensorKind::Razor, insertion::SensorKind::Counter}) {
      core::FlowOptions opts;
      opts.sensorKind = kind;
      opts.testbenchCycles = bench::scaled(cs.testbench.cycles);
      opts.timingRepetitions = 1;
      opts.runMutationAnalysis = true;
      opts.analysisThreads = 0;  // auto: XLV_THREADS or hardware concurrency
      const core::FlowReport r = core::runFlow(cs, opts);
      const double speedup = r.timings.injectedSeconds > 0.0
                                 ? r.timings.rtlSeconds / r.timings.injectedSeconds
                                 : 0.0;
      const double corrected = r.analysis.correctedPct();
      t.addRow({first ? cs.name : "",
                kind == insertion::SensorKind::Razor ? "Razor" : "Counter",
                std::to_string(r.loc.tlmInjected),
                util::Table::fixed(r.timings.injectedSeconds, 3),
                util::Table::fixed(speedup, 2) + "x",
                std::to_string(r.analysis.total()),
                util::Table::fixed(r.analysis.killedPct(), 1),
                corrected < 0.0 ? "n.a." : util::Table::fixed(corrected, 1),
                util::Table::fixed(r.analysis.risenPct(), 1),
                util::Table::fixed(r.analysis.simSeconds, 3),
                util::Table::fixed(r.analysis.wallSeconds, 3)});
      first = false;
    }
    t.addSeparator();
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nAnalysis 'sim' is the summed work of all golden+injected runs; 'wall' is the\n"
      "elapsed time of the mutation campaign (they coincide on one thread).\n");
  std::printf(
      "\nPaper's shape: Razor versions — 2 mutants/sensor, 100%% killed, 100%% corrected,"
      "\n100%% risen. Counter versions — 3 mutants/sensor, 100%% killed, corrected n.a.,"
      "\nrisen strictly between 0 and 100%% (66.7/88.4/50.1%% in the paper: the LUT"
      "\nthreshold classifies sub-threshold delays as tolerable). Injected TLM remains"
      "\nfaster than RTL (paper: 2.83x average).\n");
  return 0;
}
