// Section 8.5 validation: "to validate these results, we simulated the same
// scenario at RTL, by injecting delays through explicitly delayed
// assignments... the percentages of detected and corrected delays, and of
// risen errors are identical."
//
// For every case study and every delta tick, this bench injects the delay at
// RTL (transport-delayed assignment in the event-driven kernel) and at TLM
// (ADAM delta mutant in the abstracted model) and compares the sensor
// observations.
#include <cstdio>

#include "bench/common.h"
#include "core/flow.h"

int main() {
  using namespace xlv;
  bench::banner("Section 8.5 — RTL delay injection vs TLM mutants", "paper Section 8.5");

  int agree = 0, total = 0;
  for (const auto& cs : bench::allCases()) {
    core::FlowOptions opts;
    opts.sensorKind = insertion::SensorKind::Counter;
    opts.testbenchCycles = bench::scaled(cs.testbench.cycles);
    opts.runMutationAnalysis = false;
    opts.measureRtl = false;
    opts.measureOptimized = false;
    const core::FlowReport flow = core::runFlow(cs, opts);
    const std::uint64_t tick = (cs.periodPs / 2) / static_cast<std::uint64_t>(cs.hfRatio + 1);
    const std::uint64_t cycles = opts.testbenchCycles;

    int ipAgree = 0, ipTotal = 0;
    // Sample a spread of sensors (first, middle, last by criticality).
    std::vector<std::size_t> picks;
    if (!flow.sensors.empty()) {
      picks = {0, flow.sensors.size() / 2, flow.sensors.size() - 1};
    }
    for (std::size_t si : picks) {
      const auto& sensor = flow.sensors[si];
      for (int j : {2, 5, 8, 9}) {
        // RTL: transport delay of j HF periods on the endpoint register.
        rtl::RtlSimulator<hdt::FourState> rtlSim(
            flow.augmentedDesign, rtl::KernelConfig{cs.periodPs, cs.hfRatio, 100000});
        rtlSim.setStimulus([&](std::uint64_t c, rtl::RtlSimulator<hdt::FourState>& s) {
          cs.testbench.drive(
              c, [&](const std::string& n, std::uint64_t v) { s.setInputByName(n, v); });
        });
        rtlSim.injectDelay(flow.augmentedDesign.findSymbol(sensor.endpointName),
                           static_cast<std::uint64_t>(j) * tick);
        std::uint64_t rtlMeas = 0, rtlRisen = 0;
        for (std::uint64_t c = 0; c < cycles; ++c) {
          rtlSim.runCycles(1);
          rtlMeas = std::max(rtlMeas, rtlSim.valueUintByName(sensor.measValSignal));
          rtlRisen |= rtlSim.valueUintByName(sensor.outOkSignal) == 0 ? 1 : 0;
        }

        // TLM: delta mutant of j HF periods on the same register.
        auto injected = mutation::injectMutants(
            flow.augmentedDesign,
            {{sensor.endpointName, mutation::MutantKind::DeltaDelay, j}});
        abstraction::TlmIpModel<hdt::FourState> tlmSim(
            injected, abstraction::TlmModelConfig{cs.hfRatio, false});
        tlmSim.activateMutant(0);
        std::uint64_t tlmMeas = 0, tlmRisen = 0;
        for (std::uint64_t c = 0; c < cycles; ++c) {
          cs.testbench.drive(
              c, [&](const std::string& n, std::uint64_t v) { tlmSim.setInputByName(n, v); });
          tlmSim.scheduler();
          tlmMeas = std::max(tlmMeas, tlmSim.valueUintByName(sensor.measValSignal));
          tlmRisen |= tlmSim.valueUintByName(sensor.outOkSignal) == 0 ? 1 : 0;
        }

        ++ipTotal;
        ++total;
        const bool same = rtlMeas == tlmMeas && rtlRisen == tlmRisen;
        if (same) {
          ++ipAgree;
          ++agree;
        } else {
          std::printf("  MISMATCH %s/%s j=%d: RTL meas=%llu risen=%llu, TLM meas=%llu risen=%llu\n",
                      cs.name.c_str(), sensor.endpointName.c_str(), j,
                      static_cast<unsigned long long>(rtlMeas),
                      static_cast<unsigned long long>(rtlRisen),
                      static_cast<unsigned long long>(tlmMeas),
                      static_cast<unsigned long long>(tlmRisen));
        }
      }
    }
    std::printf("%-8s: %2d/%2d RTL-vs-TLM sensor observations identical\n", cs.name.c_str(),
                ipAgree, ipTotal);
  }
  std::printf("\nTotal agreement: %d/%d (paper: \"the number of errors risen at RTL and\n"
              "at TLM was identical\").\n", agree, total);
  return agree == total ? 0 : 1;
}
