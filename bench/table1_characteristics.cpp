// Table 1: characteristics of the IPs used as case studies.
// Columns: RTL (loc), PI (#), PO (#), VDD [V], fclk [GHz], FF (#),
// Gates (#), Processes (synch/asynch).
#include "abstraction/emit_vhdl.h"
#include "abstraction/emit_cpp.h"
#include "bench/common.h"
#include "ir/elaborate.h"
#include "sta/sta.h"
#include "util/table.h"

int main() {
  using namespace xlv;
  bench::banner("Table 1 — IP characteristics", "paper Table 1");

  util::Table t({"Digital IP", "RTL (loc)", "PI (#)", "PO (#)", "VDD [V]", "fclk [GHz]",
                 "FF (#)", "Gates (#)", "Synch.", "Asynch."});
  for (const auto& cs : bench::allCases()) {
    ir::Design d = ir::elaborate(*cs.module);
    int pi = 0, po = 0;
    for (const auto& s : d.symbols) {
      if (s.dir == ir::PortDir::In) ++pi;  // clocks included, as in an entity
      if (s.dir == ir::PortDir::Out) ++po;
    }
    const int loc = abstraction::countLines(abstraction::emitVhdl(*cs.module));
    const double gates = sta::estimateAreaGates(d);
    t.addRow({cs.name, std::to_string(loc), std::to_string(pi), std::to_string(po),
              util::Table::fixed(cs.vdd, 2), util::Table::fixed(cs.clockGHz, 1),
              std::to_string(d.flipFlopBits()), std::to_string(static_cast<long>(gates)),
              std::to_string(d.countProcesses(true)), std::to_string(d.countProcesses(false))});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nPaper's values: Plasma 1893 loc/1297 FF/14286 gates/7+94 procs;"
              "\n                DSP 1274 loc/536 FF/8098 gates/2+67 procs;"
              "\n                Filter 508 loc/128 FF/2255 gates/11+34 procs.\n");
  return 0;
}
