// Table 3: characteristics and simulation performance of the generated TLM
// code. Columns per IP and sensor type: RTL time (s), Abstracted TLM (loc),
// TLM time (s), speedup w.r.t. RTL.
#include "bench/common.h"
#include "core/flow.h"
#include "util/table.h"

int main() {
  using namespace xlv;
  bench::banner("Table 3 — RTL-to-TLM abstraction performance", "paper Table 3");

  util::Table t({"Digital IP", "Delay sensors", "RTL time (s)", "TLM (loc)", "TLM time (s)",
                 "Speedup w.r.t. RTL"});
  double speedupSum = 0.0;
  int rows = 0;
  for (const auto& cs : bench::allCases()) {
    bool first = true;
    for (auto kind : {insertion::SensorKind::Razor, insertion::SensorKind::Counter}) {
      core::FlowOptions opts;
      opts.sensorKind = kind;
      opts.testbenchCycles = bench::scaled(cs.testbench.cycles * 4);
      opts.timingRepetitions = 3;
      opts.runMutationAnalysis = false;
      opts.measureOptimized = false;
      const core::FlowReport r = core::runFlow(cs, opts);
      const double speedup = r.timings.tlmSeconds > 0.0
                                 ? r.timings.rtlSeconds / r.timings.tlmSeconds
                                 : 0.0;
      speedupSum += speedup;
      ++rows;
      t.addRow({first ? cs.name : "",
                kind == insertion::SensorKind::Razor ? "Razor" : "Counter",
                util::Table::fixed(r.timings.rtlSeconds, 3), std::to_string(r.loc.tlm),
                util::Table::fixed(r.timings.tlmSeconds, 3),
                util::Table::fixed(speedup, 2) + "x"});
      first = false;
    }
    t.addSeparator();
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\nAverage speedup: %.2fx (paper: 3.05x average; Razor rows 2.60-3.21x,"
              "\nCounter rows 2.78-3.80x — the shape to match is TLM consistently faster).\n",
              speedupSum / rows);
  return 0;
}
