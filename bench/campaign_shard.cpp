// Campaign sharding: single-process reference versus N merged shards.
//
// Workload: the "smoke" builtin spec (2 IPs x 2 sensor kinds x 2 STA
// corners) plus the "single" spec fragmented by mutant range. Each shard is
// executed with the process-wide caches cleared and its artifacts pushed
// through the wire codecs, i.e. exactly what a separate worker process sees;
// the merged result must be bit-identical (CampaignResult::sameResults) to
// the single-process run.
//
// Self-check (CI runs the true multi-process variant through
// tools/xlv_campaign; this binary is the in-process equivalent): any
// divergence, for any shard count, exits nonzero — and so does the
// artifact-store warm leg when its ledgers report zero disk hits (a
// silently disabled cache must not pass on a vacuously identical diff).
#include <stdlib.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>

#include "analysis/golden_cache.h"
#include "analysis/mutant_cache.h"
#include "bench/common.h"
#include "campaign/serialize.h"
#include "campaign/shard.h"
#include "core/flow.h"
#include "util/artifact_store.h"
#include "util/table.h"

namespace {

using namespace xlv;

void clearCaches() { core::clearProcessCaches(); }

/// Run every shard of a plan as a worker process would: cold caches, spec
/// and plan decoded from their wire form, output round-tripped through the
/// codec.
campaign::CampaignResult runSharded(const campaign::CampaignSpec& spec,
                                    const campaign::ShardPlan& plan) {
  const std::string specWire = campaign::encodeCampaignSpec(spec);
  const std::string planWire = campaign::encodeShardPlan(plan);
  std::vector<campaign::ShardOutput> outputs;
  for (int s = 0; s < plan.shardCount(); ++s) {
    clearCaches();
    const campaign::CampaignSpec workerSpec = campaign::decodeCampaignSpec(specWire);
    const campaign::ShardPlan workerPlan = campaign::decodeShardPlan(planWire);
    outputs.push_back(campaign::decodeShardOutput(
        campaign::encodeShardOutput(campaign::runShard(workerSpec, workerPlan, s))));
  }
  clearCaches();
  return campaign::mergeShards(spec, outputs);
}

}  // namespace

int main() {
  bench::banner("Campaign sharding — N processes vs one, bit-identical merge",
                "the process-level scaling of paper Section 7's campaigns");

  bool ok = true;
  util::Table t({"Spec", "Shards", "Units", "Wall max (s)", "Sim sum (s)", "Identical"});

  // --- whole-item sharding of the smoke sweep --------------------------------
  campaign::CampaignSpec smoke = campaign::builtinCampaignSpec("smoke");
  for (auto& item : smoke.items) item.options.testbenchCycles = bench::scaled(80);
  clearCaches();
  const campaign::CampaignResult single = campaign::runCampaign(smoke);
  ok = ok && single.ok();
  t.addRow({"smoke", "1", std::to_string(single.items.size()),
            util::Table::fixed(single.wallSeconds, 3), util::Table::fixed(single.simSeconds, 3),
            "ref"});

  for (int shards : {2, 3, 5}) {
    const campaign::ShardPlan plan =
        campaign::planShards(smoke, campaign::ShardPlanOptions{shards, 0, {}});
    const campaign::CampaignResult merged = runSharded(smoke, plan);
    const bool identical = single.sameResults(merged);
    ok = ok && merged.ok() && identical;
    std::size_t units = 0;
    for (const auto& s : plan.shards) units += s.size();
    t.addRow({"smoke", std::to_string(shards), std::to_string(units),
              util::Table::fixed(merged.wallSeconds, 3),
              util::Table::fixed(merged.simSeconds, 3), identical ? "yes" : "NO — BUG"});
  }

  // --- mutant-range fragmentation of one oversized item ----------------------
  campaign::CampaignSpec one = campaign::builtinCampaignSpec("single");
  for (auto& item : one.items) item.options.testbenchCycles = bench::scaled(120);
  clearCaches();
  const campaign::CampaignResult oneSingle = campaign::runCampaign(one);
  ok = ok && oneSingle.ok();
  const std::size_t mutants =
      oneSingle.items.empty() ? 0 : oneSingle.items[0].report.analysis.results.size();
  t.addRow({"single", "1", "1", util::Table::fixed(oneSingle.wallSeconds, 3),
            util::Table::fixed(oneSingle.simSeconds, 3), "ref"});

  {
    campaign::ShardPlanOptions opt;
    opt.shards = 3;
    opt.maxFragmentMutants = mutants > 3 ? (mutants + 2) / 3 : 1;
    const campaign::ShardPlan plan = campaign::planShards(one, opt);
    const campaign::CampaignResult merged = runSharded(one, plan);
    const bool identical = oneSingle.sameResults(merged);
    ok = ok && merged.ok() && identical;
    std::size_t units = 0;
    for (const auto& s : plan.shards) units += s.size();
    t.addRow({"single", "3", std::to_string(units), util::Table::fixed(merged.wallSeconds, 3),
              util::Table::fixed(merged.simSeconds, 3), identical ? "yes" : "NO — BUG"});
  }

  // --- persistent artifact store: cold populate, warm sharded reload ---------
  // The cross-process reuse path of `xlv_campaign run-shard --cache-dir`:
  // a cold sharded pass writes golden traces / prefixes / mutant results to
  // a shared store; a second sharded pass (memory caches cleared per shard,
  // like fresh worker processes) must reload instead of recompute — with a
  // nonzero disk-hit ledger — and stay bit-identical.
  const std::filesystem::path cacheDir =
      std::filesystem::temp_directory_path() /
      ("xlv-bench-shard-cache-" + std::to_string(static_cast<long>(::getpid())));
  std::filesystem::remove_all(cacheDir);
  util::configureProcessArtifactStore(util::ArtifactStoreConfig{cacheDir.string(), 0});
  {
    const campaign::ShardPlan plan =
        campaign::planShards(smoke, campaign::ShardPlanOptions{3, 0, {}});
    const campaign::CampaignResult coldStore = runSharded(smoke, plan);
    const campaign::CampaignResult warmStore = runSharded(smoke, plan);
    const bool identical =
        single.sameResults(coldStore) && single.sameResults(warmStore);
    const bool warmHits = warmStore.diskHits > 0 && warmStore.mutantCacheHits > 0;
    if (!warmHits) {
      std::fprintf(stderr,
                   "FAIL: warm sharded leg reports no cache reuse (disk hits %d, "
                   "mutant hits %d, stores %d) — store silently disabled?\n",
                   warmStore.diskHits, warmStore.mutantCacheHits, warmStore.diskStores);
    }
    ok = ok && coldStore.ok() && warmStore.ok() && identical && warmHits;
    t.addRow({"smoke+store", "3 cold", std::to_string(coldStore.diskStores) + " stored",
              util::Table::fixed(coldStore.wallSeconds, 3),
              util::Table::fixed(coldStore.simSeconds, 3), identical ? "yes" : "NO — BUG"});
    t.addRow({"smoke+store", "3 warm", std::to_string(warmStore.diskHits) + " loaded",
              util::Table::fixed(warmStore.wallSeconds, 3),
              util::Table::fixed(warmStore.simSeconds, 3), identical ? "yes" : "NO — BUG"});
  }
  util::configureProcessArtifactStore(std::nullopt);
  std::filesystem::remove_all(cacheDir);
  clearCaches();

  // --- divergence-driven fast path vs XLV_REFERENCE_SIM=1 full replay -------
  // Acceptance self-check on the PRISTINE builtin presets (fixed cycle
  // budgets, so the ratio is a deterministic cycle count, not a timing):
  // bit-identical results and >= 2x fewer simulated mutant-cycles.
  const char* refPresets[2] = {"smoke", "single"};
  double refRatios[2] = {0.0, 0.0};
  std::uint64_t fastSimulated = 0, fastSkipped = 0, refSimulated = 0;
  for (int p = 0; p < 2; ++p) {
    const char* preset = refPresets[p];
    const campaign::CampaignSpec spec = campaign::builtinCampaignSpec(preset);
    clearCaches();
    const campaign::CampaignResult fast = campaign::runCampaign(spec);
    ::setenv("XLV_REFERENCE_SIM", "1", 1);
    clearCaches();
    const campaign::CampaignResult reference = campaign::runCampaign(spec);
    ::unsetenv("XLV_REFERENCE_SIM");

    const bool identical = reference.sameResults(fast);
    const double ratio =
        fast.cyclesSimulated > 0 ? static_cast<double>(reference.cyclesSimulated) /
                                       static_cast<double>(fast.cyclesSimulated)
                                 : 0.0;
    if (!identical) {
      std::fprintf(stderr, "FAIL: preset '%s' fast path diverged from full replay\n",
                   preset);
    }
    if (fast.cyclesSkipped == 0 || ratio < 2.0) {
      std::fprintf(stderr,
                   "FAIL: preset '%s' simulated %llu of %llu reference mutant-cycles "
                   "(%.2fx, skipped %llu) — expected >= 2x fewer\n",
                   preset, static_cast<unsigned long long>(fast.cyclesSimulated),
                   static_cast<unsigned long long>(reference.cyclesSimulated), ratio,
                   static_cast<unsigned long long>(fast.cyclesSkipped));
    }
    ok = ok && fast.ok() && reference.ok() && identical && fast.cyclesSkipped > 0 &&
         ratio >= 2.0;
    refRatios[p] = ratio;
    fastSimulated += fast.cyclesSimulated;
    fastSkipped += fast.cyclesSkipped;
    refSimulated += reference.cyclesSimulated;
    t.addRow({std::string(preset) + "+refdiff", "fast vs ref",
              std::to_string(fast.cyclesSimulated) + "/" +
                  std::to_string(reference.cyclesSimulated) + " cyc",
              util::Table::fixed(ratio, 2) + "x", "-", identical ? "yes" : "NO — BUG"});
  }
  clearCaches();

  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nExpected shape: every merged row reports \"yes\" — the shard planner\n"
      "assigns stable global task ids (and global mutant ids within fragmented\n"
      "items), so the task-id-ordered merge reproduces the single-process\n"
      "result bit-for-bit while sim work distributes across processes. The\n"
      "\"+store\" rows run against a shared --cache-dir artifact store: the\n"
      "warm pass must reload (disk hits > 0) and still match bit-for-bit.\n"
      "The \"+refdiff\" rows pin the divergence-driven fast path: bit-identical\n"
      "to XLV_REFERENCE_SIM=1 full replay with >= 2x fewer simulated cycles\n"
      "(smoke %.2fx, single %.2fx).\n",
      refRatios[0], refRatios[1]);

  bench::writeBenchJson(
      "campaign_shard",
      {{"wall_seconds_single", single.wallSeconds},
       {"sim_seconds_single", single.simSeconds},
       {"cycles_simulated_fast", static_cast<double>(fastSimulated)},
       {"cycles_skipped_fast", static_cast<double>(fastSkipped)},
       {"cycles_simulated_reference", static_cast<double>(refSimulated)},
       {"cycle_reduction_smoke", refRatios[0]},
       {"cycle_reduction_single", refRatios[1]},
       {"self_check_ok", ok ? 1.0 : 0.0}});

  if (!ok) {
    std::fprintf(stderr, "\nFAIL: sharded campaign diverged from the single-process run "
                         "or a warm cache served nothing\n");
    return 1;
  }
  std::printf("\nself-check: OK\n");
  return 0;
}
