// Shared helpers for the benchmark binaries. Every bench regenerates one
// table or figure of the paper (see DESIGN.md's experiment index) and prints
// it in the paper's row/column structure.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "ips/case_study.h"

namespace xlv::bench {

/// Cycle budget multiplier: XLV_BENCH_SCALE=2 doubles every simulation
/// length (slower, steadier timings); 0.5 halves them (quick smoke run).
inline double scale() {
  const char* s = std::getenv("XLV_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0.0 ? v : 1.0;
}

inline std::uint64_t scaled(std::uint64_t cycles) {
  const double v = static_cast<double>(cycles) * scale();
  return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
}

inline std::vector<ips::CaseStudy> allCases() {
  std::vector<ips::CaseStudy> cases;
  cases.push_back(ips::buildPlasmaCase());
  cases.push_back(ips::buildDspCase());
  cases.push_back(ips::buildFilterCase());
  return cases;
}

inline void banner(const char* what, const char* paperRef) {
  std::printf("\n=== %s ===\n(reproduces %s; absolute times are host-dependent, the paper's\n shape — orderings, factors, crossovers — is the comparison target)\n\n",
              what, paperRef);
}

/// Machine-readable bench report: one JSON object per bench run so CI can
/// upload the file as an artifact and the perf trajectory (wall seconds,
/// simulated-vs-skipped mutant cycles, cache hits) is trackable PR over PR.
/// The output path comes from XLV_BENCH_JSON, defaulting to
/// BENCH_<benchName>.json in the working directory so two benches run
/// back-to-back never clobber each other's report.
inline void writeBenchJson(const std::string& benchName,
                           const std::vector<std::pair<std::string, double>>& metrics) {
  const char* env = std::getenv("XLV_BENCH_JSON");
  const std::string path =
      (env != nullptr && *env != '\0') ? env : "BENCH_" + benchName + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"metrics\": {\n", benchName.c_str());
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.17g%s\n", metrics[i].first.c_str(), metrics[i].second,
                 i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("bench json: %s\n", path.c_str());
}

}  // namespace xlv::bench
