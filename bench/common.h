// Shared helpers for the benchmark binaries. Every bench regenerates one
// table or figure of the paper (see DESIGN.md's experiment index) and prints
// it in the paper's row/column structure.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ips/case_study.h"

namespace xlv::bench {

/// Cycle budget multiplier: XLV_BENCH_SCALE=2 doubles every simulation
/// length (slower, steadier timings); 0.5 halves them (quick smoke run).
inline double scale() {
  const char* s = std::getenv("XLV_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0.0 ? v : 1.0;
}

inline std::uint64_t scaled(std::uint64_t cycles) {
  const double v = static_cast<double>(cycles) * scale();
  return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
}

inline std::vector<ips::CaseStudy> allCases() {
  std::vector<ips::CaseStudy> cases;
  cases.push_back(ips::buildPlasmaCase());
  cases.push_back(ips::buildDspCase());
  cases.push_back(ips::buildFilterCase());
  return cases;
}

inline void banner(const char* what, const char* paperRef) {
  std::printf("\n=== %s ===\n(reproduces %s; absolute times are host-dependent, the paper's\n shape — orderings, factors, crossovers — is the comparison target)\n\n",
              what, paperRef);
}

}  // namespace xlv::bench
