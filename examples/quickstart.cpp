// Quickstart: the complete cross-level verification flow on a small IP.
//
// Walks the paper's four steps (Fig. 3) end to end:
//   1. build an RTL IP and identify its critical paths with STA;
//   2. insert a Razor delay sensor at each critical endpoint;
//   3. abstract the augmented IP to a TLM model and inject delay mutants;
//   4. run mutation analysis: golden-vs-injected co-simulation, sensor
//      observation, mutation score.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "abstraction/abstractor.h"
#include "analysis/mutation_analysis.h"
#include "insertion/insertion.h"
#include "ir/builder.h"
#include "ir/elaborate.h"
#include "mutation/adam.h"
#include "sta/sta.h"

using namespace xlv;
using namespace xlv::ir;

int main() {
  // ---------------------------------------------------------------- step 0
  // A multiply-accumulate IP: acc <= acc + a*b, with a registered output.
  ModuleBuilder mb("mac");
  auto clk = mb.clock("clk");
  auto rst = mb.in("rst", 1);
  auto a = mb.in("a", 8);
  auto b = mb.in("b", 8);
  auto result = mb.out("result", 16);
  auto acc = mb.signal("acc", 16);
  auto prod = mb.signal("prod", 16);
  mb.comb("multiply", [&](ProcBuilder& p) {
    p.assign(prod, zext(Ex(a), 16) * zext(Ex(b), 16));
  });
  mb.onRising("accumulate", clk, [&](ProcBuilder& p) {
    p.if_(Ex(rst) == 1u, [&] { p.assign(acc, lit(16, 0)); },
          [&] { p.assign(acc, Ex(acc) + Ex(prod)); });
  });
  mb.comb("drive", [&](ProcBuilder& p) { p.assign(result, acc); });
  auto ip = mb.finish();
  Design clean = elaborate(*ip);
  std::printf("IP 'mac': %d flip-flop bits, %.0f NAND2-equivalent gates\n",
              clean.flipFlopBits(), sta::estimateAreaGates(clean));

  // ---------------------------------------------------------------- step 1
  // Static timing analysis: find the critical endpoints (the multiplier
  // cone into `acc` dominates).
  sta::StaConfig staCfg;
  staCfg.clockPeriodPs = 1000;         // 1 GHz target
  staCfg.thresholdFraction = 0.5;      // margin budget
  auto timing = sta::analyze(clean, staCfg);
  std::printf("\n%s\n", sta::formatReport(timing).c_str());

  // Insert a Razor sensor at every critical endpoint.
  insertion::InsertionConfig icfg;
  icfg.kind = insertion::SensorKind::Razor;
  auto inserted = insertion::insertSensors(*ip, timing, icfg);
  std::printf("Inserted %zu Razor sensor(s), +%.0f gates\n", inserted.sensors.size(),
              inserted.sensorAreaGates);
  Design augmented = elaborate(*inserted.augmented);

  // ---------------------------------------------------------------- step 2
  // Abstract to TLM (also emits the SystemC-TLM-style source).
  abstraction::AbstractionOptions aopts;
  auto artifacts = abstraction::abstractDesign(augmented, aopts);
  std::printf("Abstracted TLM model: %d lines of generated C++\n", artifacts.sourceLines);

  // ---------------------------------------------------------------- step 3
  // Inject the delay mutants for every sensor (min + max per endpoint).
  auto specs = analysis::razorMutantSet(inserted.sensors);
  auto injected = mutation::injectMutants(augmented, specs);
  std::printf("Injected %zu delay mutants\n", injected.mutants.size());

  // ---------------------------------------------------------------- step 4
  // Mutation analysis under a simple testbench.
  analysis::Testbench tb;
  tb.name = "mac_tb";
  tb.cycles = 60;
  tb.drive = [](std::uint64_t c, const analysis::PortSetter& set) {
    set("rst", c < 2 ? 1 : 0);
    set("a", (3 * c + 1) & 0xFF);
    set("b", (5 * c + 2) & 0xFF);
  };
  analysis::AnalysisConfig acfg;
  auto report = analysis::analyzeMutations<hdt::FourState>(augmented, injected,
                                                           inserted.sensors, tb, acfg);
  std::printf("\nMutation analysis over %llu cycles x %d mutants:\n",
              static_cast<unsigned long long>(report.cyclesPerRun), report.total());
  for (const auto& r : report.results) {
    std::printf("  mutant %d (%s on %s): %s, error %s, %s\n", r.id,
                mutation::mutantKindName(r.kind), r.endpoint.c_str(),
                r.killed ? "killed" : "SURVIVED", r.errorRisen ? "risen" : "silent",
                r.correctionChecked ? (r.corrected ? "corrected" : "NOT corrected") : "-");
  }
  std::printf("\nMutation score: %.1f%%  (errors risen %.1f%%, corrected %.1f%%)\n",
              report.mutationScorePct(), report.risenPct(), report.correctedPct());
  return report.mutationScorePct() == 100.0 ? 0 : 1;
}
