// Domain example: the MEMS-microphone decimation filter, from PDM bits to
// PCM samples, with Razor sensors guarding the CIC datapath — and a
// demonstration of what the mutation-analysis step catches.
#include <cstdio>

#include "core/flow.h"

using namespace xlv;

int main() {
  ips::CaseStudy cs = ips::buildFilterCase();
  core::FlowOptions opts;
  opts.sensorKind = insertion::SensorKind::Razor;
  opts.runMutationAnalysis = true;
  opts.measureRtl = false;
  opts.measureOptimized = false;
  opts.testbenchCycles = 600;
  core::FlowReport flow = core::runFlow(cs, opts);

  std::printf("Decimator: %zu Razor sensors on the CIC/FIR registers\n", flow.sensors.size());
  std::printf("Worst path: %s (slack %.0f ps of %llu ps period)\n\n",
              flow.sta.paths.front().endpointName.c_str(), flow.sta.paths.front().slackPs,
              static_cast<unsigned long long>(cs.periodPs));

  // Run the abstracted model and print a PCM excerpt (sine + DC offset).
  abstraction::TlmIpModel<hdt::FourState> model(flow.augmentedDesign,
                                                abstraction::TlmModelConfig{0, false});
  std::printf("PCM output (one sample per 16 PDM bits):\n  ");
  int printed = 0;
  for (int c = 0; c < 1400 && printed < 24; ++c) {
    cs.testbench.drive(static_cast<std::uint64_t>(c),
                       [&](const std::string& n, std::uint64_t v) { model.setInputByName(n, v); });
    model.scheduler();
    if (model.valueUintByName("pcm_valid") == 1) {
      const auto raw = model.valueUintByName("pcm");
      const auto pcm = static_cast<std::int16_t>(raw);
      std::printf("%d ", pcm);
      if (++printed % 12 == 0) std::printf("\n  ");
    }
  }

  // What the verification flow guarantees: every modeled delay on every
  // monitored register is caught and corrected.
  std::printf("\nMutation analysis (%d mutants over %llu cycles):\n", flow.analysis.total(),
              static_cast<unsigned long long>(flow.analysis.cyclesPerRun));
  std::printf("  killed     : %.1f%%\n", flow.analysis.killedPct());
  std::printf("  errors risen: %.1f%%\n", flow.analysis.risenPct());
  std::printf("  corrected  : %.1f%%\n", flow.analysis.correctedPct());
  std::printf("\nThe augmented decimator ships with verified self-checking timing\n"
              "monitors: any in-window delay raises METRIC_OK before audio corrupts.\n");
  return flow.analysis.mutationScorePct() == 100.0 ? 0 : 1;
}
