// Domain example: the heart-rate DSP with Counter-based monitors.
//
// Runs the detector over the synthetic blood-flow waveform at RTL (with a
// VCD waveform dump), then demonstrates quantitative delay measurement:
// a transport delay injected on the integrator register is measured in
// HF-clock periods by the embedded monitor, and classified against the LUT
// threshold — all while the DSP keeps detecting beats.
#include <cstdio>

#include "core/flow.h"
#include "rtl/vcd.h"

using namespace xlv;

int main() {
  ips::CaseStudy cs = ips::buildDspCase();
  core::FlowOptions opts;
  opts.sensorKind = insertion::SensorKind::Counter;
  opts.runMutationAnalysis = false;
  opts.measureRtl = false;
  opts.measureOptimized = false;
  opts.testbenchCycles = 1;
  core::FlowReport flow = core::runFlow(cs, opts);
  std::printf("DSP augmented with %zu Counter monitors (HF ratio %d, threshold 8)\n",
              flow.sensors.size(), cs.hfRatio);

  // Locate the integrator's sensor.
  const insertion::InsertedSensor* integSensor = nullptr;
  for (const auto& s : flow.sensors) {
    if (s.endpointName == "integ") integSensor = &s;
  }
  if (integSensor == nullptr) {
    std::printf("integ not monitored at this threshold\n");
    return 1;
  }

  rtl::RtlSimulator<hdt::FourState> sim(flow.augmentedDesign,
                                        rtl::KernelConfig{cs.periodPs, cs.hfRatio, 100000});
  rtl::VcdWriter vcd("heartbeat_dsp.vcd", flow.augmentedDesign);
  sim.attachVcd(&vcd);
  sim.setStimulus([&](std::uint64_t c, rtl::RtlSimulator<hdt::FourState>& s) {
    cs.testbench.drive(c, [&](const std::string& n, std::uint64_t v) { s.setInputByName(n, v); });
  });

  const std::uint64_t tick = (cs.periodPs / 2) / static_cast<std::uint64_t>(cs.hfRatio + 1);
  std::printf("\nphase 1: healthy silicon (cycles 0-399)\n");
  int beats = 0;
  for (int c = 0; c < 400; ++c) {
    sim.runCycles(1);
    beats += static_cast<int>(sim.valueUintByName("beat"));
  }
  std::printf("  beats detected: %d, MEAS_VAL=%llu, METRIC_OK=%llu\n", beats,
              static_cast<unsigned long long>(sim.valueUintByName(integSensor->measValSignal)),
              static_cast<unsigned long long>(sim.valueUintByName("metric_ok")));

  std::printf("\nphase 2: aging silicon — integrator path slowed by 5 HF periods\n");
  sim.injectDelay(flow.augmentedDesign.findSymbol("integ"), 5 * tick);
  beats = 0;
  for (int c = 0; c < 400; ++c) {
    sim.runCycles(1);
    beats += static_cast<int>(sim.valueUintByName("beat"));
  }
  std::printf("  beats detected: %d, MEAS_VAL=%llu (tolerable: <= 8), METRIC_OK=%llu\n", beats,
              static_cast<unsigned long long>(sim.valueUintByName(integSensor->measValSignal)),
              static_cast<unsigned long long>(sim.valueUintByName("metric_ok")));

  std::printf("\nphase 3: worn-out silicon — integrator path slowed by 9 HF periods\n");
  sim.injectDelay(flow.augmentedDesign.findSymbol("integ"), 9 * tick);
  beats = 0;
  for (int c = 0; c < 400; ++c) {
    sim.runCycles(1);
    beats += static_cast<int>(sim.valueUintByName("beat"));
  }
  std::printf("  beats detected: %d, MEAS_VAL=%llu (VIOLATION: > 8), METRIC_OK=%llu\n", beats,
              static_cast<unsigned long long>(sim.valueUintByName(integSensor->measValSignal)),
              static_cast<unsigned long long>(sim.valueUintByName("metric_ok")));

  std::printf("\nWaveforms dumped to heartbeat_dsp.vcd (open with GTKWave).\n");
  std::printf("The monitor turned an invisible analog drift into a quantified digital\n"
              "measurement — the detection-and-correction paradigm of Section 2.1.\n");
  return 0;
}
