// Virtual-platform example: the Razor-augmented Plasma CPU as a TLM-2.0
// target in a small memory-mapped system (router + memory + the abstracted
// IP), driven by an initiator through b_transport — the paper's motivating
// use case for moving verification to the system level (Section 2.4).
#include <cstdio>

#include "abstraction/abstractor.h"
#include "core/flow.h"
#include "tlm/memory.h"
#include "tlm/router.h"

using namespace xlv;

int main() {
  // Build the augmented Plasma (STA + Razor insertion) via the flow facade.
  ips::CaseStudy cs = ips::buildPlasmaCase();
  core::FlowOptions opts;
  opts.sensorKind = insertion::SensorKind::Razor;
  opts.runMutationAnalysis = false;
  opts.measureRtl = false;
  opts.measureOptimized = false;
  opts.testbenchCycles = 1;
  core::FlowReport flow = core::runFlow(cs, opts);
  std::printf("Plasma augmented with %zu Razor sensors\n", flow.sensors.size());

  // Abstracted TLM model wrapped behind a TLM-2.0 target socket.
  abstraction::TlmIpModel<hdt::FourState> cpu(flow.augmentedDesign,
                                              abstraction::TlmModelConfig{0, false});
  abstraction::TlmIpTarget<hdt::FourState> cpuTarget(cpu, tlm::Time(cs.periodPs));

  // Memory-mapped system: scratch memory at 0x0000, CPU registers at 0x8000.
  tlm::Memory scratch(4096);
  tlm::Router router;
  router.map(0x0000, 4096, scratch.socket(), "scratch");
  router.map(0x8000, 0x1000, cpuTarget.socket(), "plasma");

  tlm::InitiatorSocket bus;
  bus.bind(router.socket());

  // Resolve the CPU's port register addresses.
  const auto& d = flow.augmentedDesign;
  auto inputIndex = [&](const std::string& name) {
    for (std::size_t i = 0; i < d.inputs.size(); ++i) {
      if (d.symbol(d.inputs[i]).name == name) return static_cast<int>(i);
    }
    return -1;
  };
  auto outputIndex = [&](const std::string& name) {
    for (std::size_t i = 0; i < d.outputs.size(); ++i) {
      if (d.symbol(d.outputs[i]).name == name) return static_cast<int>(i);
    }
    return -1;
  };
  const std::uint64_t kCpu = 0x8000;
  const std::uint64_t rstAddr = kCpu + cpuTarget.inputAddress(inputIndex("rst"));
  const std::uint64_t recAddr = kCpu + cpuTarget.inputAddress(inputIndex("recovery_en"));
  const std::uint64_t ioOutAddr = kCpu + cpuTarget.outputAddress(outputIndex("io_out"));
  const std::uint64_t okAddr = kCpu + cpuTarget.outputAddress(outputIndex("metric_ok"));
  const std::uint64_t ctrlAddr = kCpu + abstraction::TlmIpMap::kCtrl;

  tlm::GenericPayload tx;
  tlm::Time delay;

  auto write32 = [&](std::uint64_t addr, std::uint32_t v) {
    tx.setWriteWord(addr, v);
    bus.b_transport(tx, delay);
  };
  auto read32 = [&](std::uint64_t addr) {
    tx.setRead(addr, 4);
    bus.b_transport(tx, delay);
    return tx.dataWord();
  };

  // Reset, enable recovery, then run the firmware in batches of cycles;
  // every batch of b_transport-triggered cycles is a burst of TLM
  // transactions. Log the I/O port and the METRIC_OK health flag.
  write32(recAddr, 1);
  write32(rstAddr, 1);
  write32(ctrlAddr, 2);  // two reset cycles
  write32(rstAddr, 0);

  std::printf("\nbatch | cycles | io_out     | metric_ok | local time (ns)\n");
  std::printf("------+--------+------------+-----------+----------------\n");
  for (int batch = 1; batch <= 8; ++batch) {
    write32(ctrlAddr, 25);  // 25 CPU cycles per burst
    const std::uint32_t io = read32(ioOutAddr);
    const std::uint32_t ok = read32(okAddr);
    std::printf("  %2d  |  %4d  | 0x%08X |     %u     | %10.1f\n", batch, batch * 25, io, ok,
                delay.ns());
    // Stash the observed value into scratch memory over the same bus.
    write32(0x100 + static_cast<std::uint64_t>(batch) * 4, io);
  }

  // The scratch memory now holds the log, readable via debug transport.
  std::printf("\nscratch log (via transport_dbg): ");
  for (int batch = 1; batch <= 8; ++batch) {
    tlm::GenericPayload dbg;
    dbg.setRead(0x100 + static_cast<std::uint64_t>(batch) * 4, 4);
    router.transport_dbg(dbg);
    std::printf("%u ", dbg.dataWord());
  }
  std::printf("\n\nMETRIC_OK stayed high: no timing failures in the healthy system.\n");
  return 0;
}
