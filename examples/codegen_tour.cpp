// Code-generation tour: what the flow's tools emit at each level.
//
// Shows (1) the VHDL view of an IP before and after sensor insertion,
// (2) the SystemC-TLM-style C++ the abstraction produces, and (3) the
// ADAM-injected variant with its apply_mutant functions — the textual
// artifacts behind the LoC columns of Tables 1, 2, 3 and 5.
#include <cstdio>

#include "abstraction/abstractor.h"
#include "abstraction/emit_vhdl.h"
#include "insertion/insertion.h"
#include "ir/builder.h"
#include "ir/elaborate.h"
#include "mutation/adam.h"
#include "sta/sta.h"

using namespace xlv;
using namespace xlv::ir;

int main() {
  // A small gray-code counter IP.
  ModuleBuilder mb("gray");
  auto clk = mb.clock("clk");
  auto rst = mb.in("rst", 1);
  auto out = mb.out("code", 8);
  auto cnt = mb.signal("cnt", 8);
  mb.onRising("count", clk, [&](ProcBuilder& p) {
    p.if_(Ex(rst) == 1u, [&] { p.assign(cnt, lit(8, 0)); },
          [&] { p.assign(cnt, Ex(cnt) + 1u); });
  });
  mb.comb("encode", [&](ProcBuilder& p) { p.assign(out, Ex(cnt) ^ shr(Ex(cnt), 1)); });
  auto ip = mb.finish();

  std::printf("=============== 1. RTL view (emitted VHDL) ===============\n\n%s\n",
              abstraction::emitVhdl(*ip).c_str());

  sta::StaConfig staCfg;
  staCfg.clockPeriodPs = 1000;
  staCfg.thresholdFraction = 1.0;
  auto report = sta::analyze(elaborate(*ip), staCfg);
  auto ins = insertion::insertSensors(*ip, report, insertion::InsertionConfig{});
  std::printf("========= 2. augmented RTL (Razor inserted at '%s') =========\n\n",
              ins.sensors.front().endpointName.c_str());
  const std::string augV = abstraction::emitVhdl(*ins.augmented);
  // Print only the top entity (the Razor entity precedes it).
  const auto pos = augV.find("entity gray_razor");
  std::printf("%s\n", augV.substr(pos == std::string::npos ? 0 : augV.rfind("library", pos))
                          .c_str());

  Design aug = elaborate(*ins.augmented);
  auto injected =
      mutation::injectMutants(aug, {{"cnt", mutation::MutantKind::MinDelay, 0},
                                    {"cnt", mutation::MutantKind::MaxDelay, 0}});
  abstraction::EmitCppOptions eo;
  std::printf("====== 3. abstracted + injected TLM (generated C++) ======\n\n%s\n",
              abstraction::emitCppInjected(injected, eo).c_str());

  std::printf("LoC summary: clean RTL %d, augmented RTL %d, injected TLM %d\n",
              abstraction::countLines(abstraction::emitVhdl(*ip)),
              abstraction::countLines(augV),
              abstraction::countLines(abstraction::emitCppInjected(injected, eo)));
  return 0;
}
